"""Trust conditions and per-peer trust policies.

Reconciliation uses *trust conditions* — predicates over the content and
provenance of updates — to attach numeric priorities to candidate
transactions.  In the Figure-2 network, for example:

* Alaska, Beijing and Dresden trust all other participants equally, while
* Crete trusts only Beijing and Dresden, preferring Beijing in a conflict.

A :class:`TrustPolicy` combines ordered :class:`TrustCondition` rules with a
fallback table of per-peer priorities.  Priority 0 means "distrusted": an
update that only receives priority 0 is rejected during reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from ..errors import TrustError
from .schema import PeerSchema
from .updates import Update

#: A content predicate receives ``{attribute: value}`` for the update's tuple
#: and returns whether the condition applies.
ContentPredicate = Callable[[Mapping[str, object]], bool]


@dataclass(frozen=True)
class TrustCondition:
    """One trust rule: *if the update matches, assign this priority*.

    Attributes:
        priority: Priority granted to matching updates (0 = distrust/reject).
        origin_peer: Only match updates originally made at this peer.
        relation: Only match updates against this relation (in the evaluating
            peer's schema, i.e. after translation).
        predicate: Optional content predicate over the update's tuple, given
            as ``{attribute: value}``.
        description: Human-readable explanation used in reports.
    """

    priority: int
    origin_peer: Optional[str] = None
    relation: Optional[str] = None
    predicate: Optional[ContentPredicate] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise TrustError("trust priorities must be non-negative")

    def matches(self, update: Update, schema: Optional[PeerSchema] = None) -> bool:
        """Does this condition apply to ``update``?"""
        if self.origin_peer is not None and update.origin != self.origin_peer:
            return False
        if self.relation is not None and update.relation != self.relation:
            return False
        if self.predicate is not None:
            if schema is None or not schema.has_relation(update.relation):
                return False
            row = schema.relation(update.relation).as_dict(update.values)
            if not self.predicate(row):
                return False
        return True

    def __str__(self) -> str:
        parts = []
        if self.origin_peer:
            parts.append(f"from {self.origin_peer}")
        if self.relation:
            parts.append(f"on {self.relation}")
        if self.predicate:
            parts.append("matching predicate")
        clause = " ".join(parts) or "any update"
        text = f"{clause} -> priority {self.priority}"
        if self.description:
            text += f" ({self.description})"
        return text


@dataclass
class TrustPolicy:
    """A peer's complete trust policy.

    Evaluation order: the first matching :class:`TrustCondition` wins;
    otherwise the per-peer priority table applies; otherwise
    ``default_priority``.  The originating peer's own updates are always
    fully trusted (they are already applied locally).
    """

    owner: str
    conditions: list[TrustCondition] = field(default_factory=list)
    peer_priorities: dict[str, int] = field(default_factory=dict)
    default_priority: int = 1
    own_priority: int = 1_000_000
    #: When True, an update is additionally required to be *derivable from
    #: trusted peers' published data* (checked over provenance) to keep a
    #: positive priority.  The demonstration scenarios use origin-based trust
    #: only, so this is off by default.
    require_trusted_provenance: bool = False

    def __post_init__(self) -> None:
        if self.default_priority < 0:
            raise TrustError("default_priority must be non-negative")
        for priority in self.peer_priorities.values():
            if priority < 0:
                raise TrustError("peer priorities must be non-negative")

    # -- construction helpers ------------------------------------------------
    @staticmethod
    def trust_all(owner: str, priority: int = 1) -> "TrustPolicy":
        """The policy used by Alaska, Beijing and Dresden: trust everyone equally."""
        return TrustPolicy(owner=owner, default_priority=priority)

    @staticmethod
    def trust_only(
        owner: str, priorities: Mapping[str, int], others: int = 0
    ) -> "TrustPolicy":
        """Trust only the listed peers (e.g. Crete: Beijing=2, Dresden=1, others 0)."""
        return TrustPolicy(
            owner=owner,
            peer_priorities=dict(priorities),
            default_priority=others,
        )

    def add_condition(self, condition: TrustCondition) -> "TrustPolicy":
        self.conditions.append(condition)
        return self

    # -- evaluation ---------------------------------------------------------
    def priority_for_update(
        self, update: Update, schema: Optional[PeerSchema] = None
    ) -> int:
        """Priority assigned to one translated update."""
        if update.origin == self.owner:
            return self.own_priority
        for condition in self.conditions:
            if condition.matches(update, schema):
                return condition.priority
        if update.origin in self.peer_priorities:
            return self.peer_priorities[update.origin]
        return self.default_priority

    def priority_for_updates(
        self, updates: Iterable[Update], schema: Optional[PeerSchema] = None
    ) -> int:
        """Priority of a whole transaction: the *minimum* over its updates.

        A transaction is only as trustworthy as its least trusted update —
        accepting it applies every update atomically.
        """
        priorities = [self.priority_for_update(update, schema) for update in updates]
        if not priorities:
            return 0
        return min(priorities)

    def trusts_peer(self, peer: str) -> bool:
        """Does this policy assign the peer's plain updates a positive priority?"""
        if peer == self.owner:
            return True
        for condition in self.conditions:
            if condition.origin_peer == peer and condition.relation is None and condition.predicate is None:
                return condition.priority > 0
        if peer in self.peer_priorities:
            return self.peer_priorities[peer] > 0
        return self.default_priority > 0

    def trusted_peers(self, all_peers: Iterable[str]) -> set[str]:
        return {peer for peer in all_peers if self.trusts_peer(peer)}

    def priorities_by_peer(self, all_peers: Iterable[str]) -> dict[str, int]:
        """The priority each peer's plain updates receive under this policy.

        Mirrors :meth:`trusts_peer` but keeps the magnitude, which is what
        semiring-valued trust questions need: combined with
        :func:`repro.provenance.homomorphism.specialize_assignment`, the
        returned table turns a stored provenance DAG into, e.g., tropical
        costs (cheapest trusted derivation) or counting weights — evaluated
        once per shared sub-derivation through the memoized circuit.
        """
        priorities: dict[str, int] = {}
        for peer in all_peers:
            if peer == self.owner:
                priorities[peer] = self.own_priority
                continue
            priority = None
            for condition in self.conditions:
                if (
                    condition.origin_peer == peer
                    and condition.relation is None
                    and condition.predicate is None
                ):
                    priority = condition.priority
                    break
            if priority is None:
                priority = self.peer_priorities.get(peer, self.default_priority)
            priorities[peer] = priority
        return priorities

    def describe(self) -> str:
        lines = [f"Trust policy of {self.owner}:"]
        for condition in self.conditions:
            lines.append(f"  - {condition}")
        for peer, priority in sorted(self.peer_priorities.items()):
            lines.append(f"  - updates from {peer} -> priority {priority}")
        lines.append(f"  - anything else -> priority {self.default_priority}")
        return "\n".join(lines)
