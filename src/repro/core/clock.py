"""Logical clocks and reconciliation epochs.

Every update-exchange operation (a publication or a reconciliation) advances
a system-wide logical clock: the overall state of data in the system has
changed and future updates should be causally related to previously accepted
ones.  Peers remember the epoch up to which they have reconciled so that the
next reconciliation only needs to consider newer publications.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LogicalClock:
    """A monotonically increasing counter of update-exchange operations."""

    _value: int = 0

    @property
    def value(self) -> int:
        return self._value

    def tick(self) -> int:
        """Advance the clock and return the new epoch."""
        self._value += 1
        return self._value

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalClock({self._value})"


@dataclass
class PeerClockState:
    """Per-peer bookkeeping of how far it has published and reconciled."""

    last_published_epoch: int = 0
    last_reconciled_epoch: int = 0

    def record_publication(self, epoch: int) -> None:
        self.last_published_epoch = max(self.last_published_epoch, epoch)

    def record_reconciliation(self, epoch: int) -> None:
        self.last_reconciled_epoch = max(self.last_reconciled_epoch, epoch)
