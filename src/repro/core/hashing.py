"""Process-stable hashing of values, transactions and identifiers.

Python's builtin ``hash()`` is randomized per interpreter run (via
``PYTHONHASHSEED``), which makes it useless for anything two processes must
agree on: replica placement, shard routing, content-addressed transaction
ids, and — the reason this module exists — set-reconciliation sketches,
where both ends of a session must map the same transaction to the same
64-bit digest or the decoded symmetric difference is garbage.

This module provides the one shared utility the p2p layer builds on:

* :func:`canonical_encode` — a deterministic, type-tagged byte encoding of
  plain Python values (ints, strings, tuples, sets, dicts, ...).  Two equal
  values always encode identically; values of different types never collide
  (``1`` vs ``"1"`` vs ``True`` are distinct).
* :func:`stable_hash` — a seeded 64-bit digest of any encodable value
  (BLAKE2b keyed by the seed).  Distinct seeds give independent hash
  families, which the sketches use to re-randomize between decode attempts.
* :func:`stable_text_hash` — the legacy SHA-256-prefix digest of a string,
  kept bit-for-bit identical to the hash the distributed store and the
  replica placement ranking always used, so shard routing and placement do
  not change under this module's consolidation.
* :func:`mix64` — a cheap invertible integer mixer (splitmix64 finalizer)
  for deriving double-hashing probe sequences from one digest without
  rehashing the full value per probe.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from ..errors import TransactionError

MASK64 = (1 << 64) - 1


def stable_text_hash(text: str) -> int:
    """64-bit digest of a string: the first 8 bytes of SHA-256, big-endian.

    This is the exact function the distributed store has always used for
    consistent-hash ring points and sequence routing; it lives here so every
    placement decision shares one implementation.
    """
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


def mix64(value: int) -> int:
    """splitmix64 finalizer: scrambles a 64-bit integer deterministically."""
    value = value & MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & MASK64
    return (value ^ (value >> 31)) & MASK64


def canonical_encode(value: object) -> bytes:
    """Deterministic type-tagged byte encoding of a plain Python value.

    Supported: ``None``, bools, ints, floats, strings, bytes, tuples/lists,
    sets/frozensets (encoded in sorted-by-encoding order, so iteration order
    is irrelevant) and dicts (sorted by encoded key).  Anything else raises
    :class:`TransactionError` — silently falling back to ``repr`` would let
    unstable encodings leak into digests.
    """
    parts: list[bytes] = []
    _encode_into(value, parts)
    return b"".join(parts)


def _encode_into(value: object, parts: list[bytes]) -> None:
    # bool must precede int: True == 1 but must not hash like it.
    if value is None:
        parts.append(b"N;")
    elif isinstance(value, bool):
        parts.append(b"b1;" if value else b"b0;")
    elif isinstance(value, int):
        parts.append(b"i%d;" % value)
    elif isinstance(value, float):
        parts.append(b"f" + repr(value).encode("ascii") + b";")
    elif isinstance(value, str):
        # Covers str-valued enums (UpdateKind) too: they *are* their value.
        data = value.encode("utf-8")
        parts.append(b"s%d:" % len(data))
        parts.append(data)
    elif isinstance(value, bytes):
        parts.append(b"y%d:" % len(value))
        parts.append(value)
    elif isinstance(value, (tuple, list)):
        parts.append(b"t%d:" % len(value))
        for item in value:
            _encode_into(item, parts)
    elif isinstance(value, (set, frozenset)):
        encoded = sorted(canonical_encode(item) for item in value)
        parts.append(b"F%d:" % len(encoded))
        parts.extend(encoded)
    elif isinstance(value, dict):
        items = sorted(
            (canonical_encode(key), canonical_encode(val)) for key, val in value.items()
        )
        parts.append(b"d%d:" % len(items))
        for key_bytes, val_bytes in items:
            parts.append(key_bytes)
            parts.append(val_bytes)
    else:
        raise TransactionError(
            f"cannot stably encode value of type {type(value).__name__}: {value!r}"
        )


def stable_hash(value: object, seed: int = 0) -> int:
    """Seeded 64-bit digest of any :func:`canonical_encode`-able value.

    Stable across processes and interpreter versions; different seeds give
    independent hash families.
    """
    digest = hashlib.blake2b(
        canonical_encode(value),
        digest_size=8,
        key=(seed & MASK64).to_bytes(8, "big"),
    ).digest()
    return int.from_bytes(digest, "big")


def encoded_size(value: object) -> int:
    """Length in bytes of the canonical encoding — the subsystem's measure of
    how large a value is "on the wire" for byte accounting."""
    return len(canonical_encode(value))


def xor_checksum(digests: Iterable[int]) -> int:
    """Order-independent 64-bit set checksum: XOR of member digests."""
    checksum = 0
    for digest in digests:
        checksum ^= digest
    return checksum & MASK64
