"""Tuple helpers and labelled nulls.

Tuples flowing through the CDSS are plain Python tuples of scalars, except
that cells produced by existential variables of mappings are *labelled nulls*
— ground skolem terms.  This module provides helpers for building, displaying
and classifying such tuples without the rest of the core package needing to
know about the datalog representation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..datalog.ast import SkolemTerm

#: Re-exported so that client code can isinstance-check labelled nulls
#: without importing the datalog package.
LabelledNull = SkolemTerm


def labelled_null(function: str, *arguments: object) -> SkolemTerm:
    """Construct a labelled null explicitly (mostly useful in tests)."""
    return SkolemTerm(function, tuple(arguments))


def is_labelled_null(value: object) -> bool:
    """True when ``value`` is a labelled null produced by a mapping."""
    return isinstance(value, SkolemTerm) and value.is_ground


def has_labelled_nulls(values: Sequence[object]) -> bool:
    """True when any cell of the tuple is a labelled null."""
    return any(is_labelled_null(value) for value in values)


def render_value(value: object) -> str:
    """Human-readable rendering of one cell value."""
    if is_labelled_null(value):
        arguments = ", ".join(render_value(argument) for argument in value.arguments)
        return f"⊥{value.function}({arguments})"
    if isinstance(value, str):
        return value
    return repr(value)


def render_tuple(values: Sequence[object]) -> str:
    """Human-readable rendering of a whole tuple."""
    return "(" + ", ".join(render_value(value) for value in values) + ")"


def freeze(values: Iterable[object]) -> tuple:
    """Normalise an iterable of cell values into a hashable tuple."""
    return tuple(values)
