"""Declarative schema mappings between peers.

A mapping is a tuple-generating dependency (tgd)

    body over the source peer's schema  →  head over the target peer's schema

written, as in the paper, in datalog notation.  The Figure-2 network uses:

* identity mappings ``M_A↔B`` and ``M_C↔D`` between peers sharing a schema,
* the join mapping ``M_A→C`` turning the three Σ1 tables into the single Σ2
  table ``OPS(org, prot, seq)``, and
* the split mapping ``M_C→A`` doing the inverse, which requires existential
  variables (``oid``, ``pid``) that become labelled nulls in Σ1.

Mappings are *directional*; a bidirectional relationship is expressed with
two mappings.  The update-exchange engine compiles mappings into datalog
rules over peer-qualified relation names (see :mod:`repro.exchange.rules`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..analysis import codes as _codes
from ..datalog.ast import Atom, Constant, SkolemTerm, Term, Variable
from ..datalog.parser import parse_atom, parse_rule, parse_tgd
from ..errors import MappingError, SourceSpan
from .schema import PeerSchema, RelationSchema, split_qualified


@dataclass(frozen=True)
class Mapping:
    """A schema mapping (tgd) from one peer's schema to another's.

    Attributes:
        mapping_id: Unique identifier, e.g. ``"M_A_to_C"``.
        source_peer: Name of the peer whose relations appear in the body.
        target_peer: Name of the peer whose relations appear in the head.
        body: Conjunction of atoms over the source schema (unqualified names).
        heads: Conjunction of atoms over the target schema (unqualified
            names).  Variables appearing only in the head are existential and
            become labelled nulls during exchange.
    """

    mapping_id: str
    source_peer: str
    target_peer: str
    body: tuple[Atom, ...]
    heads: tuple[Atom, ...]
    #: Where the mapping was declared, when parsed from a spec document.
    #: Excluded from equality/hashing so structurally identical mappings
    #: from different sources still compare equal.
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "heads", tuple(self.heads))
        if not self.mapping_id:
            raise MappingError("mapping_id must be non-empty")
        if not self.body:
            raise MappingError(f"mapping {self.mapping_id!r} has an empty body")
        if not self.heads:
            raise MappingError(f"mapping {self.mapping_id!r} has an empty head")
        for atom in self.body + self.heads:
            if atom.negated:
                raise MappingError(
                    f"mapping {self.mapping_id!r} uses negation, which tgds do not allow"
                )

    # -- variable structure ----------------------------------------------------
    def body_variables(self) -> set[Variable]:
        found: set[Variable] = set()
        for atom in self.body:
            found.update(atom.variables())
        return found

    def head_variables(self) -> set[Variable]:
        found: set[Variable] = set()
        for atom in self.heads:
            found.update(atom.variables())
        return found

    def existential_variables(self) -> set[Variable]:
        """Head variables not bound by the body (they become labelled nulls)."""
        return self.head_variables() - self.body_variables()

    def exported_variables(self) -> set[Variable]:
        """Variables shared between body and head (the values that flow across)."""
        return self.head_variables() & self.body_variables()

    @property
    def is_identity(self) -> bool:
        """True for single-atom mappings that copy a relation unchanged."""
        if len(self.body) != 1 or len(self.heads) != 1:
            return False
        body_atom, head_atom = self.body[0], self.heads[0]
        return (
            body_atom.predicate == head_atom.predicate
            and body_atom.terms == head_atom.terms
            and not self.existential_variables()
        )

    # -- relation usage -----------------------------------------------------
    def source_relations(self) -> set[str]:
        return {atom.predicate for atom in self.body}

    def target_relations(self) -> set[str]:
        return {atom.predicate for atom in self.heads}

    def validate_against(
        self, source_schema: PeerSchema, target_schema: PeerSchema
    ) -> None:
        """Check that the mapping only uses relations/arities that exist."""
        for atom in self.body:
            if not source_schema.has_relation(atom.predicate):
                raise MappingError(
                    f"mapping {self.mapping_id!r} body uses unknown relation "
                    f"{atom.predicate!r} of peer {self.source_peer!r}",
                    code=_codes.UNKNOWN_RELATION,
                    span=atom.span or self.span,
                )
            expected = source_schema.arity(atom.predicate)
            if atom.arity != expected:
                raise MappingError(
                    f"mapping {self.mapping_id!r} body atom {atom.predicate!r} has arity "
                    f"{atom.arity}, schema says {expected}",
                    code=_codes.ARITY_MISMATCH,
                    span=atom.span or self.span,
                )
        for atom in self.heads:
            if not target_schema.has_relation(atom.predicate):
                raise MappingError(
                    f"mapping {self.mapping_id!r} head uses unknown relation "
                    f"{atom.predicate!r} of peer {self.target_peer!r}",
                    code=_codes.UNKNOWN_RELATION,
                    span=atom.span or self.span,
                )
            expected = target_schema.arity(atom.predicate)
            if atom.arity != expected:
                raise MappingError(
                    f"mapping {self.mapping_id!r} head atom {atom.predicate!r} has arity "
                    f"{atom.arity}, schema says {expected}",
                    code=_codes.ARITY_MISMATCH,
                    span=atom.span or self.span,
                )

    def __str__(self) -> str:
        body = ", ".join(repr(atom) for atom in self.body)
        heads = ", ".join(repr(atom) for atom in self.heads)
        return f"[{self.mapping_id}] {self.source_peer}: {body}  ->  {self.target_peer}: {heads}"


# -- constructors ----------------------------------------------------------------

def mapping_from_tgd(
    text: str, mapping_id: Optional[str] = None, *, origin_line: int = 1
) -> Mapping:
    """Build a mapping from a peer-qualified tgd rule.

    The rule is written target-first, in the notation of the paper and the
    declarative network-spec language::

        [M_AC] @Crete.OPS(org, prot, seq) :-
            @Alaska.O(org, oid), @Alaska.P(prot, pid), @Alaska.S(oid, pid, seq).

    Every atom must be peer-qualified; all head atoms must name one target
    peer and all body atoms one source peer.  The rule label becomes the
    mapping id unless ``mapping_id`` overrides it.
    """
    tgd = parse_tgd(text, origin_line=origin_line)
    identifier = mapping_id or tgd.label
    if not identifier:
        raise MappingError(
            f"tgd {text!r} needs a [label] or an explicit mapping_id",
            code=_codes.MALFORMED_SPEC,
            span=tgd.span,
        )

    def unqualify(atoms, side: str) -> tuple[str, tuple[Atom, ...]]:
        peers: set[str] = set()
        stripped: list[Atom] = []
        for atom in atoms:
            if "." not in atom.predicate:
                raise MappingError(
                    f"mapping {identifier!r}: atom {atom.predicate!r} in the {side} "
                    "is not peer-qualified (write @Peer.Relation(...))",
                    code=_codes.MALFORMED_SPEC,
                    span=atom.span or tgd.span,
                )
            peer, relation = split_qualified(atom.predicate)
            peers.add(peer)
            stripped.append(Atom(relation, atom.terms, span=atom.span))
        if len(peers) != 1:
            raise MappingError(
                f"mapping {identifier!r}: the {side} must reference exactly one "
                f"peer, found {sorted(peers)}",
                code=_codes.MALFORMED_SPEC,
                span=tgd.span,
            )
        return peers.pop(), tuple(stripped)

    target_peer, heads = unqualify(tgd.heads, "head")
    source_peer, body = unqualify(tgd.body, "body")
    return Mapping(identifier, source_peer, target_peer, body, heads, span=tgd.span)


def _render_term(term: Term) -> str:
    """Render a term so that :func:`parse_tgd` reads it back unchanged."""
    if isinstance(term, Variable):
        return f"?{term.name}"
    if isinstance(term, SkolemTerm):
        inner = ", ".join(_render_term(argument) for argument in term.arguments)
        return f"{term.function}({inner})"
    if isinstance(term, Constant):
        value = term.value
        if value is None:
            return "null"
        if value is True:
            return "true"
        if value is False:
            return "false"
        if isinstance(value, str):
            escaped = value.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        return repr(value)
    raise MappingError(f"cannot render term {term!r} in a tgd")


def _render_qualified_atom(peer: str, atom: Atom) -> str:
    terms = ", ".join(_render_term(term) for term in atom.terms)
    return f"@{peer}.{atom.predicate}({terms})"


def mapping_to_tgd(mapping: Mapping) -> str:
    """Render a mapping as the peer-qualified tgd text of the spec language.

    Inverse of :func:`mapping_from_tgd` (up to whitespace): the rendered rule
    parses back into an equal mapping.
    """
    heads = ", ".join(
        _render_qualified_atom(mapping.target_peer, atom) for atom in mapping.heads
    )
    body = ", ".join(
        _render_qualified_atom(mapping.source_peer, atom) for atom in mapping.body
    )
    return f"[{mapping.mapping_id}] {heads} :- {body}."


def mapping_from_datalog(
    mapping_id: str, source_peer: str, target_peer: str, text: str
) -> Mapping:
    """Build a mapping from datalog notation ``head1(...), ... :- body(...)``.

    Only a single head atom is supported in this notation; use
    :func:`split_mapping` or the :class:`Mapping` constructor directly for
    multi-atom heads.
    """
    rule = parse_rule(text)
    body_atoms = tuple(atom for atom in rule.body if isinstance(atom, Atom))
    if len(body_atoms) != len(rule.body):
        raise MappingError("mappings may not contain comparison atoms")
    return Mapping(mapping_id, source_peer, target_peer, body_atoms, (rule.head,))


def identity_mapping(
    mapping_id: str,
    source_peer: str,
    target_peer: str,
    relations: Iterable[RelationSchema | str],
    arities: dict[str, int] | None = None,
) -> list[Mapping]:
    """One identity mapping per relation, copying it unchanged between peers.

    Accepts either :class:`RelationSchema` objects or relation names plus an
    ``arities`` dict.  Returns one :class:`Mapping` per relation so that each
    can be traced separately in provenance.
    """
    mappings: list[Mapping] = []
    for relation in relations:
        if isinstance(relation, RelationSchema):
            name, arity = relation.name, relation.arity
        else:
            if arities is None or relation not in arities:
                raise MappingError(
                    f"identity_mapping needs the arity of relation {relation!r}"
                )
            name, arity = relation, arities[relation]
        variables = tuple(Variable(f"x{i}") for i in range(arity))
        atom = Atom(name, variables)
        mappings.append(
            Mapping(f"{mapping_id}_{name}", source_peer, target_peer, (atom,), (atom,))
        )
    return mappings


def join_mapping(
    mapping_id: str,
    source_peer: str,
    target_peer: str,
    head: str,
    body: Sequence[str],
) -> Mapping:
    """Build a mapping whose body is a join and whose head is a single atom.

    ``head`` and each element of ``body`` are atoms in textual notation, e.g.::

        join_mapping("M_A_to_C", "Alaska", "Crete",
                     "OPS(org, prot, seq)",
                     ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"])
    """
    head_atom = parse_atom(head)
    body_atoms = tuple(parse_atom(text) for text in body)
    return Mapping(mapping_id, source_peer, target_peer, body_atoms, (head_atom,))


def split_mapping(
    mapping_id: str,
    source_peer: str,
    target_peer: str,
    heads: Sequence[str],
    body: str,
) -> Mapping:
    """Build a mapping that splits one source atom into several head atoms.

    Existential head variables (those absent from the body) are allowed and
    become labelled nulls, e.g.::

        split_mapping("M_C_to_A", "Crete", "Alaska",
                      ["O(org, oid)", "P(prot, pid)", "S(oid, pid, seq)"],
                      "OPS(org, prot, seq)")
    """
    head_atoms = tuple(parse_atom(text) for text in heads)
    body_atom = parse_atom(body)
    return Mapping(mapping_id, source_peer, target_peer, (body_atom,), head_atoms)
