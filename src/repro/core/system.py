"""The CDSS facade: publication, update exchange and reconciliation.

:class:`CDSS` wires the substrates together the way Figure 1 of the paper
describes:

* peers edit their local instances autonomously and commit transactions;
* ``publish(peer)`` archives the peer's unpublished transactions in the
  shared update store (simulated P2P archive), advances the logical clock,
  and folds the transactions into the incremental update-exchange engine,
  which records how they translate into every other peer's schema;
* ``reconcile(peer)`` retrieves everything published since the peer last
  reconciled, translates it into the peer's schema, and runs the trust-based
  reconciliation algorithm, applying the accepted transactions to the peer's
  local instance and deferring equal-priority conflicts;
* ``resolve_conflict(peer, winner)`` lets the site administrator settle a
  deferred conflict, cascading accepts/rejects through dependent
  transactions.

On top of these imperative primitives the facade offers the declarative
surface of :mod:`repro.api`: ``CDSS.from_spec`` builds a whole network from
a textual/dict description, ``sync()`` drives publish + reconcile across
all online peers until quiescence and returns a structured
:class:`~repro.api.sync.SyncReport`, and ``query()`` evaluates ad-hoc
datalog over a peer's instance (optionally provenance-annotated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..config import SystemConfig
from ..errors import ConfigurationError, MappingError, PeerError, PublicationError
from ..exchange.engine import ExchangeEngine
from ..exchange.migration import migrate_instance
from ..exchange.rules import compile_mappings
from ..exchange.translation import CandidateTransaction, UpdateTranslator
from ..obs import Tracer, write_chrome_trace
from ..p2p.distributed import store_from_config
from ..p2p.gossip import GossipCoordinator
from ..p2p.network import Network
from ..p2p.reconcile import ReconcileConfig
from ..p2p.replication import ReplicationManager
from ..p2p.store import UpdateStore
from ..reconcile.algorithm import ReconcileResult, Reconciler
from ..reconcile.decisions import DeferredConflict, ReconciliationState
from ..reconcile.resolution import ResolutionResult, resolve_conflict
from .catalog import Catalog
from .clock import LogicalClock
from .mapping import Mapping
from .peer import Peer
from .schema import PeerSchema
from .transactions import Transaction
from .trust import TrustPolicy


@dataclass
class PublishOutcome:
    """Summary of one publication."""

    peer: str
    epoch: int
    published: list[str] = field(default_factory=list)
    translated_changes: int = 0

    def to_dict(self) -> dict:
        """Plain-data form used by reports, benchmarks and serialization."""
        return {
            "peer": self.peer,
            "epoch": self.epoch,
            "published": list(self.published),
            "translated_changes": self.translated_changes,
        }


@dataclass
class ReconcileOutcome:
    """Summary of one reconciliation, wrapping the algorithm-level result."""

    peer: str
    epoch: int
    candidates_considered: int
    result: ReconcileResult

    @property
    def accepted(self) -> list[str]:
        return self.result.accepted

    @property
    def rejected(self) -> list[str]:
        return self.result.rejected

    @property
    def deferred(self) -> list[str]:
        return self.result.deferred

    @property
    def pending(self) -> list[str]:
        return self.result.pending

    def to_dict(self) -> dict:
        """Plain-data form used by reports, benchmarks and serialization."""
        serialized = self.result.to_dict()
        serialized["epoch"] = self.epoch
        serialized["candidates_considered"] = self.candidates_considered
        return serialized


@dataclass
class PublishAllOutcome:
    """Outcome of publishing across several peers.

    Iterates like the plain list of per-peer :class:`PublishOutcome` it used
    to be, but additionally names the peers that were skipped because they
    were offline at the time.
    """

    outcomes: list[PublishOutcome] = field(default_factory=list)
    skipped_offline: list[str] = field(default_factory=list)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __getitem__(self, index):
        return self.outcomes[index]

    @property
    def published_transactions(self) -> int:
        return sum(len(outcome.published) for outcome in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "skipped_offline": list(self.skipped_offline),
            "published_transactions": self.published_transactions,
        }


class CDSS:
    """A complete collaborative data sharing system."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        store_factory=None,
    ) -> None:
        """Create an empty system.

        ``store_factory`` (``(network, store_config) -> store``) overrides
        how the shared update archive is built; by default
        :func:`~repro.p2p.distributed.store_from_config` selects the
        centralized or distributed backend named by ``config.store.backend``.
        """
        self.config = config or SystemConfig.default()
        self.name = "network"
        self.catalog = Catalog()
        self.clock = LogicalClock()
        self.network = Network()
        # One observability holder for the whole system: the network owns
        # it (traffic counters land there even before the CDSS exists) and
        # every other layer shares the same registry/tracer slots.
        self.obs = self.network.obs
        if self.config.store.observability == "trace":
            self.obs.tracer = Tracer(self.network.clock)
        factory = store_factory if store_factory is not None else store_from_config
        self.store = factory(self.network, self.config.store)
        self.replication = ReplicationManager(
            self.network, self.config.store.replication_factor
        )
        store_config = self.config.store
        self.gossip: Optional[GossipCoordinator] = None
        if store_config.sync_mode == "gossip":
            self.gossip = GossipCoordinator(
                self.network,
                self.store,
                config=ReconcileConfig(
                    algorithm=store_config.sketch,
                    capacity=store_config.sketch_capacity,
                    growth=store_config.sketch_growth,
                    max_attempts=store_config.sketch_attempts,
                ),
                fanout=store_config.gossip_fanout,
                observability=self.obs,
            )
        self._engine: Optional[ExchangeEngine] = None
        self._translators: dict[str, UpdateTranslator] = {}
        self._reconcilers: dict[str, Reconciler] = {}

    # -- declarative construction --------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        source,
        config: Optional[SystemConfig] = None,
        storage_factory=None,
        store_factory=None,
    ) -> "CDSS":
        """Build a complete system from a declarative network description.

        ``source`` may be the textual spec language, an equivalent dict, or
        an already-parsed :class:`~repro.api.spec.NetworkSpec`; see
        :mod:`repro.api.spec` for the format.  The spec is fully validated
        before any peer is registered.  ``storage_factory`` (``peer name ->
        storage backend``) selects a non-default backend for every peer's
        local instance, e.g. ``lambda name: SQLiteInstance()``.
        ``store_factory`` (``(network, store_config) -> store``) overrides
        the shared archive; without it the spec's ``store`` section (or
        ``config.store.backend``) picks centralized vs distributed.
        """
        from ..api.builder import build_network

        return build_network(source, config, storage_factory, store_factory)

    def to_spec(self):
        """The declarative :class:`~repro.api.spec.NetworkSpec` of this system.

        Inverse of :meth:`from_spec` for table-based trust policies;
        ``cdss.to_spec().to_text()`` round-trips.
        """
        from ..api.spec import spec_of

        return spec_of(self)

    # -- setup -------------------------------------------------------------------
    def add_peer(
        self,
        name: str,
        schema: PeerSchema,
        trust: Optional[TrustPolicy] = None,
        storage=None,
    ) -> Peer:
        """Register a new participant.

        Args:
            name: Unique peer name.
            schema: The peer's local schema.
            trust: Trust policy (defaults to trusting everyone equally).
            storage: Optional storage backend for the local instance (for
                example a :class:`repro.storage.SQLiteInstance`); defaults to
                an in-memory instance.
        """
        peer = Peer(name, schema, trust, storage=storage)
        self.catalog.add_peer(peer)
        self.network.register(name)
        self._translators[name] = UpdateTranslator(name, schema)
        self._reconcilers[name] = Reconciler(
            peer, ReconciliationState(peer=name), self.config.reconciliation
        )
        if self.gossip is not None:
            self.gossip.register_peer(name)
        self._invalidate_engine()
        return peer

    def add_mapping(self, mapping: Mapping) -> Mapping:
        # Validate peer membership up front with a mapping-level error rather
        # than letting engine compilation fail later with a bare KeyError.
        for role, peer_name in (
            ("source", mapping.source_peer),
            ("target", mapping.target_peer),
        ):
            if not self.catalog.has_peer(peer_name):
                from ..analysis import codes as _codes

                raise MappingError(
                    f"mapping {mapping.mapping_id!r} references {role} peer "
                    f"{peer_name!r}, which is not registered; call add_peer first",
                    code=_codes.UNKNOWN_PEER,
                    span=mapping.span,
                )
        self.catalog.add_mapping(mapping)
        self._invalidate_engine()
        return mapping

    def add_mappings(self, mappings: Iterable[Mapping]) -> list[Mapping]:
        return [self.add_mapping(mapping) for mapping in mappings]

    def peer(self, name: str) -> Peer:
        return self.catalog.peer(name)

    # -- engine management ---------------------------------------------------------
    def _invalidate_engine(self) -> None:
        self._engine = None

    @property
    def engine(self) -> ExchangeEngine:
        """The update-exchange engine (built lazily, rebuilt on schema changes)."""
        if self._engine is None:
            program = compile_mappings(
                [(peer.name, peer.schema) for peer in self.catalog.peers()],
                self.catalog.mappings(),
            )
            self._engine = ExchangeEngine(
                program, self.config.exchange, observability=self.obs
            )
            # Replay anything already archived so late schema changes keep the
            # translated state consistent.
            for entry in self.store.all_entries():
                self._engine.process_transaction(entry.transaction)
        return self._engine

    def explain(self) -> str:
        """The mapping program's execution plan, rendered per backend.

        On the ``sql`` backend this is the generated ``INSERT ... SELECT``
        statement of every rule plan (plain and per-position delta); on the
        ``python`` backend it is the compiled join-plan pipeline of each
        rule.  Falls back to the python rendering when the SQL compiler
        cannot express the program.
        """
        backend = self.engine.backend
        lines = list(backend.explain(self.engine.compiled_program))
        predictions = self._fallback_predictions()
        if predictions:
            lines.append("")
            lines.append("-- static analysis: rules the SQL backend cannot compile --")
            lines.extend(predictions)
        return "\n".join(lines)

    def _fallback_predictions(self) -> list[str]:
        from ..analysis.program import sql_fallback_reasons

        return [
            f"{rule.label or rule.head.predicate}: {reason}"
            for rule, reason in sql_fallback_reasons(self.engine.program)
        ]

    def analyze(self):
        """Run the static analyzer against this system.

        Returns a :class:`~repro.analysis.diagnostics.DiagnosticReport`
        covering chase termination, rule safety, stratifiability, trust
        lints, topology, and SQL compilability — without executing anything.
        """
        from ..analysis import analyze_system

        return analyze_system(self)

    # -- publication ------------------------------------------------------------------
    def import_existing_data(self, peer_name: str) -> Optional[Transaction]:
        """Wrap a peer's pre-existing local data into an initial transaction.

        The transaction is appended to the peer's update log; the next
        ``publish`` call ships it to the rest of the system.
        """
        peer = self.peer(peer_name)
        transaction = migrate_instance(peer)
        if transaction is not None:
            peer.log.append(transaction)
        return transaction

    def publish(self, peer_name: str) -> PublishOutcome:
        """Publish a peer's unpublished transactions to the shared store."""
        peer = self.peer(peer_name)
        if self.config.store.require_online_to_publish:
            self.network.require_online(peer_name, "publish")

        pending = peer.log.unpublished()
        epoch = self.clock.tick()
        outcome = PublishOutcome(peer=peer_name, epoch=epoch)
        if not pending:
            return outcome

        with self.obs.span("publish", peer=peer_name, epoch=epoch):
            # Make sure the exchange engine exists (and has replayed the
            # archive) before new entries are appended, so nothing is
            # processed twice.
            engine = self.engine
            entries = self.store.archive(pending, epoch, peer_name)
            peer.log.mark_published(len(pending))
            peer.clock.record_publication(epoch)

            if self.gossip is not None:
                self.gossip.record_published(peer_name, entries)

            for entry in entries:
                self.replication.place(entry.txn_id, peer_name)
                delta = engine.process_transaction(entry.transaction)
                outcome.published.append(entry.txn_id)
                outcome.translated_changes += delta.change_count()
        metrics = self.obs.metrics
        metrics.counter_add("sync.publications", 1, label=peer_name)
        metrics.counter_add(
            "sync.published_transactions", len(outcome.published), label=peer_name
        )
        return outcome

    def publish_all(self, peer_names: Optional[Sequence[str]] = None) -> PublishAllOutcome:
        """Publish every (or the given) peer's pending transactions, in order.

        Offline peers are skipped but reported in ``skipped_offline`` rather
        than silently omitted; the result still iterates over the per-peer
        :class:`PublishOutcome` list for backward compatibility.
        """
        names = list(peer_names) if peer_names is not None else self.catalog.peer_names()
        result = PublishAllOutcome()
        for name in names:
            if self.network.is_online(name):
                result.outcomes.append(self.publish(name))
            else:
                result.skipped_offline.append(name)
        return result

    # -- reconciliation -------------------------------------------------------------------
    def reconcile(self, peer_name: str) -> ReconcileOutcome:
        """Translate newly published transactions and reconcile them at a peer."""
        peer = self.peer(peer_name)
        if self.config.store.require_online_to_reconcile:
            self.network.require_online(peer_name, "reconcile")

        engine = self.engine
        watermark = peer.clock.last_reconciled_epoch
        span = self.obs.span("reconcile", peer=peer_name, watermark=watermark)
        with span:
            return self._reconcile_inner(peer, peer_name, engine, watermark)

    def _reconcile_inner(
        self, peer: Peer, peer_name: str, engine: ExchangeEngine, watermark: int
    ) -> ReconcileOutcome:
        if self.gossip is not None:
            # Gossip mode: catch the peer's local entry cache up with the
            # archive (a two-message no-op when the epidemic rounds already
            # converged it) and answer "what did I miss" from the cache.
            # After catch-up the cache equals the archive, so this list is
            # identical to the cursor-mode pull below — the sketch-vs-cursor
            # oracle checks exactly that.
            self.gossip.catch_up(peer_name)
            entries = self.gossip.entries_since(peer_name, watermark)
        else:
            entries = self.store.published_since(watermark)
        translator = self._translators[peer_name]

        candidates: list[CandidateTransaction] = []
        for entry in entries:
            if not engine.has_processed(entry.txn_id):
                raise PublicationError(
                    f"transaction {entry.txn_id!r} is archived but was never exchanged"
                )
            delta = engine.delta_for(entry.txn_id)
            candidates.append(translator.translate(entry.transaction, delta))

        epoch = self.clock.tick()
        reconciler = self._reconcilers[peer_name]
        result = reconciler.reconcile(
            candidates,
            known_transactions=self.store.antecedents_map(),
            provenance=engine.provenance if self.config.exchange.track_provenance else None,
            epoch=epoch,
        )
        peer.clock.record_reconciliation(self.store.latest_epoch())
        metrics = self.obs.metrics
        metrics.counter_add("sync.reconciliations", 1, label=peer_name)
        metrics.counter_add(
            "sync.candidates_considered", len(candidates), label=peer_name
        )
        return ReconcileOutcome(
            peer=peer_name,
            epoch=epoch,
            candidates_considered=len(candidates),
            result=result,
        )

    # -- orchestration --------------------------------------------------------------
    def sync(
        self,
        peers: Optional[Sequence[str]] = None,
        max_rounds: Optional[int] = None,
        runtime: Optional[str] = None,
        trace=None,
    ):
        """Publish and reconcile across the network until quiescence.

        Runs rounds of "every online peer publishes, then every online peer
        reconciles" until a round observes no new transactions, and returns
        a structured :class:`~repro.api.sync.SyncReport` (per-peer outcomes,
        translated-change counts, skipped offline peers, open conflicts).
        Restrict participation with ``peers``.

        ``runtime`` selects the scheduler for this call — ``"serial"`` (the
        round-robin loop) or ``"async"`` (the pipelined runtime of
        :mod:`repro.api.async_sync`) — overriding
        :attr:`~repro.config.StoreConfig.sync_runtime`.  Both produce
        identical reports; they differ in how simulated network traffic
        occupies the virtual clock.

        ``trace`` controls span tracing for this and later calls:
        ``True`` installs a deterministic :class:`~repro.obs.Tracer` on
        the system's shared observability holder (keeping an existing
        one), a :class:`~repro.obs.Tracer` instance installs that tracer,
        and ``False`` removes the current tracer.  Whenever a tracer is
        active — or ``StoreConfig.observability`` is not ``"off"`` — the
        returned report carries the per-run metrics view in
        ``report.metrics``.
        """
        from ..api.sync import DEFAULT_MAX_ROUNDS, synchronize

        if trace is not None:
            if trace is False:
                self.obs.tracer = None
            elif trace is True:
                if self.obs.tracer is None:
                    self.obs.tracer = Tracer(self.network.clock)
            elif isinstance(trace, Tracer):
                self.obs.tracer = trace
            else:
                raise ConfigurationError(
                    f"trace must be True, False, or a Tracer, got {trace!r}"
                )

        selected = runtime if runtime is not None else self.config.store.sync_runtime
        if selected not in ("serial", "async"):
            raise ConfigurationError(
                f"sync runtime must be 'serial' or 'async', got {selected!r}"
            )
        rounds = max_rounds if max_rounds is not None else DEFAULT_MAX_ROUNDS
        if selected == "async":
            from ..api.async_sync import async_synchronize

            return async_synchronize(self, peers, rounds)
        return synchronize(self, peers, rounds)

    def sync_round(self, peers: Optional[Sequence[str]] = None):
        """Run exactly one publish-then-reconcile pass (no quiescence loop)."""
        from ..api.sync import sync_round

        return sync_round(self, peers)

    def query(
        self,
        peer_name: str,
        text: str,
        provenance: bool = False,
        max_depth: int = 16,
        max_monomials: Optional[int] = 10_000,
    ):
        """Evaluate an ad-hoc datalog query over one peer's local instance.

        The head predicate of the first rule in ``text`` is the answer
        relation; with ``provenance=True`` every answer row is annotated
        with its provenance polynomial over the peer's base tuples (expanded
        lazily from the hash-consed provenance DAG; ``max_monomials`` bounds
        the expansion and a row exceeding it raises
        :class:`~repro.errors.ProvenanceError` rather than materialising a
        combinatorial polynomial — pass ``None`` to lift the budget).
        Returns a :class:`~repro.api.query.QueryResult`.
        """
        from ..api.query import run_query

        return run_query(
            self,
            peer_name,
            text,
            provenance=provenance,
            max_depth=max_depth,
            max_monomials=max_monomials,
        )

    def resolve_conflict(self, peer_name: str, winner_txn_id: str) -> ResolutionResult:
        """Manually resolve a deferred conflict at a peer (administrator action)."""
        peer = self.peer(peer_name)
        reconciler = self._reconcilers[peer_name]
        return resolve_conflict(peer, reconciler.state, winner_txn_id)

    # -- observability ---------------------------------------------------------------------
    def trace_events(self) -> list[dict]:
        """The spans recorded so far (empty when tracing is off)."""
        tracer = self.obs.tracer
        return tracer.events() if tracer is not None else []

    def write_trace(self, path: str) -> None:
        """Write the recorded spans as Chrome-trace JSON (Perfetto-loadable)."""
        tracer = self.obs.tracer
        if tracer is None:
            raise ConfigurationError(
                "no tracer is active; sync(trace=True) or "
                "StoreConfig(observability='trace') first"
            )
        write_chrome_trace(tracer, path)

    def metrics_snapshot(self) -> dict:
        """Flat cumulative view of the shared metrics registry."""
        return self.obs.metrics.snapshot()

    # -- connectivity ----------------------------------------------------------------------
    def set_online(self, peer_name: str, online: bool) -> None:
        """Connect or disconnect a peer (it keeps operating locally while offline)."""
        self.peer(peer_name).set_online(online)
        self.network.set_online(peer_name, online)

    # -- inspection ---------------------------------------------------------------------------
    def reconciliation_state(self, peer_name: str) -> ReconciliationState:
        return self._reconcilers[peer_name].state

    def open_conflicts(self, peer_name: str) -> list[DeferredConflict]:
        return self._reconcilers[peer_name].state.open_conflicts()

    def peer_snapshot(self, peer_name: str) -> dict[str, frozenset[tuple]]:
        return self.peer(peer_name).snapshot()

    def statistics(self) -> dict[str, int]:
        """System-wide counters used by the reports and benchmarks."""
        stats = {
            "peers": len(self.catalog.peers()),
            "mappings": len(self.catalog.mappings()),
            "published_transactions": len(self.store),
            "epoch": self.clock.value,
        }
        if self._engine is not None:
            stats.update(self._engine.statistics())
        return stats
