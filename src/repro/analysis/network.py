"""Static analyses over whole CDSS network specs.

:func:`analyze_network_spec` accepts anything
:func:`repro.api.spec.parse_network_spec` accepts (text, dict, or a
:class:`~repro.api.spec.NetworkSpec`) and returns a
:class:`~repro.analysis.diagnostics.DiagnosticReport` covering:

* structural validity — the same checks ``NetworkSpec.validate()`` enforces,
  but collected instead of raised (``CDSS004``–``CDSS007``, ``CDSS014``),
* chase termination — weak acyclicity of the skolemized mapping dependency
  graph (``CDSS003``),
* network shape — isolated peers and redundant mappings (``CDSS008``,
  ``CDSS009``),
* trust-policy lints — shadowed rows, unsatisfiable rows, mutual-distrust
  cycles (``CDSS010``–``CDSS012``), and
* SQL compilability of the compiled exchange program (``CDSS013``).

:func:`analyze_system` runs the same analyses against a live
:class:`~repro.core.system.CDSS` (backing ``cdss.analyze()``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..core.mapping import Mapping
from ..errors import MappingError, ReproError, SpecError
from . import codes
from .chase import weak_acyclicity_violations
from .diagnostics import DiagnosticReport, message_of
from .graphs import reachable_from

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.spec import NetworkSpec
    from ..errors import SourceSpan


def analyze_network_spec(
    source: object, *, source_name: Optional[str] = None
) -> DiagnosticReport:
    """Analyze a network spec (text, dict, or :class:`NetworkSpec`)."""
    from ..api.spec import NetworkSpec, parse_network_spec

    report = DiagnosticReport()
    if isinstance(source, NetworkSpec):
        spec = source
    else:
        try:
            spec = parse_network_spec(source, validate=False)
        except ReproError as error:
            report.add(
                getattr(error, "code", None) or codes.MALFORMED_SPEC,
                message_of(error),
                span=getattr(error, "span", None),
            )
            return _finish(report, source_name)

    _check_structure(spec, report)
    _check_chase_termination(spec, report)
    _check_topology(spec, report)
    _check_trust(spec, report)
    _check_sql_compilability(spec, report)
    return _finish(report.sort(), source_name)


def _finish(report: DiagnosticReport, source_name: Optional[str]) -> DiagnosticReport:
    if source_name is not None:
        return report.with_source(source_name)
    return report


def _mapping_span(spec: "NetworkSpec", mapping_id: str) -> "Optional[SourceSpan]":
    for mapping in spec.mappings:
        if mapping.mapping_id == mapping_id:
            return mapping.span
    return None


def _check_structure(spec: "NetworkSpec", report: DiagnosticReport) -> None:
    """The ``NetworkSpec.validate()`` checks, collected as diagnostics."""
    from ..api.spec import TRUST_DEFAULT, _EXECUTION_BACKENDS

    if not spec.peers:
        report.add(codes.MALFORMED_SPEC, "a network spec needs at least one peer")
    for key, section in (("store", spec.store), ("sync", spec.sync)):
        if section is None:
            continue
        try:
            section.validate()
        except SpecError as error:
            report.add(
                getattr(error, "code", None) or codes.MALFORMED_SPEC,
                message_of(error),
                span=getattr(error, "span", None) or spec.spans.get(key),
            )
    if spec.execution is not None and spec.execution not in _EXECUTION_BACKENDS:
        report.add(
            codes.MALFORMED_SPEC,
            f"execution backend must be 'python' or 'sql', got {spec.execution!r}",
            span=spec.spans.get("execution"),
        )

    schemas: Dict[str, object] = {}
    for peer in spec.peers.values():
        if not peer.relations:
            report.add(
                codes.MALFORMED_SPEC,
                f"peer {peer.name!r} declares no relations",
                span=peer.span_of("peer"),
                subject=peer.name,
            )
            continue
        for relation in peer.keys:
            if relation not in peer.relations:
                report.add(
                    codes.UNKNOWN_RELATION,
                    f"peer {peer.name!r} declares a key for unknown relation "
                    f"{relation!r}",
                    span=peer.span_of(f"key:{relation}"),
                    subject=peer.name,
                )
        for trusted in peer.trust:
            if trusted != TRUST_DEFAULT and trusted not in spec.peers:
                report.add(
                    codes.UNKNOWN_PEER,
                    f"peer {peer.name!r} declares trust in unknown peer {trusted!r}",
                    span=peer.span_of(f"trust:{trusted}"),
                    subject=peer.name,
                )
        try:
            schemas[peer.name] = peer.schema()
        except ReproError as error:
            report.add(
                getattr(error, "code", None) or codes.MALFORMED_SPEC,
                f"peer {peer.name!r} has an invalid schema: {message_of(error)}",
                span=peer.span_of("peer"),
                subject=peer.name,
            )

    seen_ids: Set[str] = set()
    for mapping in spec.mappings:
        if mapping.mapping_id in seen_ids:
            report.add(
                codes.DUPLICATE_MAPPING,
                f"duplicate mapping id {mapping.mapping_id!r}",
                span=mapping.span,
                subject=mapping.mapping_id,
            )
        seen_ids.add(mapping.mapping_id)
        resolved = True
        for role, peer_name in (
            ("source", mapping.source_peer),
            ("target", mapping.target_peer),
        ):
            if peer_name not in spec.peers:
                report.add(
                    codes.UNKNOWN_PEER,
                    f"mapping {mapping.mapping_id!r} references unknown {role} "
                    f"peer {peer_name!r}",
                    span=mapping.span,
                    subject=mapping.mapping_id,
                )
                resolved = False
        if not resolved:
            continue
        source_schema = schemas.get(mapping.source_peer)
        target_schema = schemas.get(mapping.target_peer)
        if source_schema is None or target_schema is None:
            continue
        try:
            mapping.validate_against(source_schema, target_schema)
        except MappingError as error:
            report.add(
                getattr(error, "code", None) or codes.MALFORMED_SPEC,
                message_of(error),
                span=getattr(error, "span", None) or mapping.span,
                subject=mapping.mapping_id,
            )


def _check_chase_termination(spec: "NetworkSpec", report: DiagnosticReport) -> None:
    """Weak acyclicity of the skolemized mapping dependency graph."""
    for violation in weak_acyclicity_violations(spec.mappings):
        report.add(
            codes.WEAK_ACYCLICITY,
            violation.describe(),
            span=_mapping_span(spec, violation.edge.mapping_id),
            subject=violation.edge.mapping_id,
        )


def _peer_digraph(mappings: List[Mapping]) -> Dict[str, List[str]]:
    adjacency: Dict[str, List[str]] = {}
    for mapping in mappings:
        successors = adjacency.setdefault(mapping.source_peer, [])
        if mapping.target_peer not in successors:
            successors.append(mapping.target_peer)
    return adjacency


def _check_topology(spec: "NetworkSpec", report: DiagnosticReport) -> None:
    """Isolated peers (CDSS008) and redundant mappings (CDSS009)."""
    participants: Set[str] = set()
    for mapping in spec.mappings:
        participants.add(mapping.source_peer)
        participants.add(mapping.target_peer)
    if len(spec.peers) > 1:
        for peer in spec.peers.values():
            if peer.name not in participants:
                report.add(
                    codes.ISOLATED_PEER,
                    f"peer {peer.name!r} is source or target of no mapping; "
                    "update exchange never reaches it",
                    span=peer.span_of("peer"),
                    subject=peer.name,
                )

    seen_shapes: Dict[Tuple, str] = {}
    for mapping in spec.mappings:
        if mapping.source_peer == mapping.target_peer and mapping.is_identity:
            report.add(
                codes.REDUNDANT_MAPPING,
                f"mapping {mapping.mapping_id!r} copies peer "
                f"{mapping.source_peer!r} onto itself; it derives nothing new",
                span=mapping.span,
                subject=mapping.mapping_id,
            )
            continue
        shape = (mapping.source_peer, mapping.target_peer, mapping.body, mapping.heads)
        first = seen_shapes.get(shape)
        if first is not None:
            report.add(
                codes.REDUNDANT_MAPPING,
                f"mapping {mapping.mapping_id!r} duplicates mapping {first!r} "
                "(same source, target, body and heads)",
                span=mapping.span,
                subject=mapping.mapping_id,
            )
        else:
            seen_shapes[shape] = mapping.mapping_id


def _check_trust(spec: "NetworkSpec", report: DiagnosticReport) -> None:
    """Shadowed (CDSS010), unsatisfiable (CDSS011) and mutually-distrusting
    (CDSS012) trust declarations."""
    from ..api.spec import TRUST_DEFAULT

    adjacency = _peer_digraph(spec.mappings)
    edges: Set[Tuple[str, str]] = {
        (mapping.source_peer, mapping.target_peer) for mapping in spec.mappings
    }

    def effective(owner: object, trusted: str) -> int:
        return owner.trust.get(trusted, owner.trust.get(TRUST_DEFAULT, 1))

    for peer in spec.peers.values():
        default = peer.trust.get(TRUST_DEFAULT, 1)
        for trusted, priority in peer.trust.items():
            if trusted == TRUST_DEFAULT:
                continue
            if trusted == peer.name:
                report.add(
                    codes.SHADOWED_TRUST,
                    f"peer {peer.name!r} declares trust in itself; own updates "
                    "are always fully trusted, so the row never applies",
                    span=peer.span_of(f"trust:{trusted}"),
                    subject=peer.name,
                )
                continue
            if priority == default:
                report.add(
                    codes.SHADOWED_TRUST,
                    f"peer {peer.name!r} trusts {trusted!r} at priority "
                    f"{priority}, which equals its default priority; the row "
                    "never changes a reconciliation outcome",
                    span=peer.span_of(f"trust:{trusted}"),
                    subject=peer.name,
                )
                continue
            if (
                priority > 0
                and trusted in spec.peers
                and peer.name != trusted
                and peer.name not in reachable_from(trusted, adjacency)
            ):
                report.add(
                    codes.UNSATISFIABLE_TRUST,
                    f"peer {peer.name!r} trusts {trusted!r} at priority "
                    f"{priority}, but no mapping path carries updates from "
                    f"{trusted!r} to {peer.name!r}; the row never matches",
                    span=peer.span_of(f"trust:{trusted}"),
                    subject=peer.name,
                )

    reported_pairs: Set[Tuple[str, str]] = set()
    for left, right in sorted(edges):
        if left == right or (right, left) not in edges:
            continue
        pair = tuple(sorted((left, right)))
        if pair in reported_pairs:
            continue
        reported_pairs.add(pair)
        left_spec = spec.peers.get(left)
        right_spec = spec.peers.get(right)
        if left_spec is None or right_spec is None:
            continue
        if effective(left_spec, right) == 0 and effective(right_spec, left) == 0:
            report.add(
                codes.MUTUAL_DISTRUST,
                f"peers {pair[0]!r} and {pair[1]!r} exchange updates in both "
                "directions but each assigns the other priority 0; every "
                "exchanged update is rejected on arrival",
                span=left_spec.span_of(f"trust:{right}"),
                subject=f"{pair[0]}<->{pair[1]}",
            )


def _check_sql_compilability(spec: "NetworkSpec", report: DiagnosticReport) -> None:
    """Predict which compiled exchange rules the SQL backend punts (CDSS013)."""
    from ..exchange.rules import compile_mappings
    from .program import sql_fallback_reasons

    try:
        peers = [(peer.name, peer.schema()) for peer in spec.peers.values()]
        program = compile_mappings(peers, list(spec.mappings))
    except ReproError:
        return  # structural errors already reported; nothing to compile
    sql_selected = spec.execution == "sql"
    severity = codes.WARNING if sql_selected else codes.INFO
    consequence = (
        "; the selected sql backend will run the whole program on the "
        "Python executor"
        if sql_selected
        else ""
    )
    for rule, reason in sql_fallback_reasons(program):
        label = rule.label or rule.head.predicate
        report.add(
            codes.SQL_FALLBACK,
            f"rule {label!r} cannot be compiled to SQL ({reason}){consequence}",
            severity=severity,
            span=rule.span or _mapping_span(spec, label),
            subject=label,
        )


def analyze_system(cdss: object) -> DiagnosticReport:
    """Analyze a live :class:`~repro.core.system.CDSS` (``cdss.analyze()``).

    When the system's trust policies are table-based the full network
    analysis runs on the extracted spec; systems carrying Python trust
    predicates fall back to the program-level analyses (safety,
    stratification, arity, SQL compilability) over the compiled exchange
    program.
    """
    from ..api.spec import spec_of

    try:
        spec = spec_of(cdss)
    except SpecError:
        spec = None
    if spec is not None:
        return analyze_network_spec(spec)

    from .program import analyze_program

    sql_selected = cdss.config.exchange.execution_backend == "sql"
    return analyze_program(cdss.engine.program, sql_selected=sql_selected)
