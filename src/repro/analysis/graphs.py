"""Small graph helpers shared by the static analyses.

Hashable-node digraphs as ``{node: [successor, ...]}`` adjacency dicts.
Everything is iterative (no recursion limits) and deterministic given
deterministic input order.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple, TypeVar

Node = TypeVar("Node", bound=Hashable)


def strongly_connected_components(
    nodes: Sequence[Node], adjacency: Dict[Node, List[Node]]
) -> Dict[Node, int]:
    """Iterative Tarjan SCC; returns a component id per node.

    Component ids are assigned in reverse-topological completion order; all
    the analyses only compare ids for equality.
    """
    index_of: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    component: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    counter = 0
    components = 0

    for root in nodes:
        if root in index_of:
            continue
        work: List[Tuple[Node, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            children = adjacency.get(node, [])
            advanced = False
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = components
                    if member == node:
                        break
                components += 1
            if work:
                parent, _ = work[-1]
                low[parent] = min(low[parent], low[node])
    return component


def reachable_from(start: Node, adjacency: Dict[Node, List[Node]]) -> Set[Node]:
    """Every node reachable from ``start`` (excluding ``start`` unless it is
    on a cycle through itself)."""
    seen: Set[Node] = set()
    frontier: List[Node] = list(adjacency.get(start, []))
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(adjacency.get(node, []))
    return seen


def shortest_path_within(
    start: Node,
    goal: Node,
    adjacency: Dict[Node, List[Node]],
    component: Dict[Node, int],
) -> List[Node]:
    """Shortest path from ``start`` to ``goal`` staying inside ``start``'s
    SCC; the returned list starts at ``start`` and ends just before ``goal``
    (the caller closes the cycle).  Returns ``[start]`` when no path exists
    or ``start == goal``."""
    scc = component.get(start)
    if start == goal:
        return [start]
    parents: Dict[Node, Node] = {}
    seen: Set[Node] = {start}
    frontier = [start]
    while frontier:
        next_frontier: List[Node] = []
        for node in frontier:
            for child in adjacency.get(node, []):
                if component.get(child) != scc or child in seen:
                    continue
                seen.add(child)
                parents[child] = node
                if child == goal:
                    path: List[Node] = []
                    walk = node
                    while True:
                        path.append(walk)
                        if walk == start:
                            break
                        walk = parents[walk]
                    path.reverse()
                    return path
                next_frontier.append(child)
        frontier = next_frontier
    return [start]
