"""Stable diagnostic codes for the CDSS static analyzer.

Every diagnostic produced by :mod:`repro.analysis` — and every build-time
error raised by the spec/builder layer that has a lint-time twin — carries
one of these ``CDSS0xx`` codes, so `python -m repro.lint` output, golden
tests, and runtime exceptions all agree on the identity of a problem.

The module is a leaf: pure data, importable from anywhere in the library
without creating import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Severity names, ordered from most to least severe.
ERROR = "error"
WARNING = "warning"
INFO = "info"

# -- code constants ---------------------------------------------------------

#: A rule/tgd is unsafe (range-unrestricted): a head, negated-atom or
#: comparison variable is not bound by a positive body atom.
UNSAFE_RULE = "CDSS001"
#: The program cannot be stratified: negation through recursion.
UNSTRATIFIABLE = "CDSS002"
#: The skolemized mapping dependency graph is not weakly acyclic: a cycle
#: passes through an existential position, so the chase (update exchange)
#: may not terminate — labelled nulls would nest without bound.
WEAK_ACYCLICITY = "CDSS003"
#: An atom's arity disagrees with the declared relation schema (or the same
#: predicate is used with two different arities in one program).
ARITY_MISMATCH = "CDSS004"
#: An atom references a relation the peer's schema does not declare.
UNKNOWN_RELATION = "CDSS005"
#: A mapping/trust/key declaration references an undeclared peer.
UNKNOWN_PEER = "CDSS006"
#: Two mappings share the same mapping id.
DUPLICATE_MAPPING = "CDSS007"
#: A peer participates in no mapping: update exchange never reaches it.
ISOLATED_PEER = "CDSS008"
#: A mapping is redundant: a structural duplicate of another mapping, or a
#: self-identity copy of a peer onto itself.
REDUNDANT_MAPPING = "CDSS009"
#: A trust row can never influence reconciliation: it repeats the effective
#: default priority, or assigns a priority to the owning peer itself (own
#: updates are always fully trusted).
SHADOWED_TRUST = "CDSS010"
#: A trust row assigns positive priority to a peer whose updates can never
#: reach the owner (no mapping path), so it never matches an incoming update.
UNSATISFIABLE_TRUST = "CDSS011"
#: Two peers exchange updates in both directions but each fully distrusts
#: the other (priority 0 both ways): every exchanged update is rejected,
#: which livelocks reconciliation between them.
MUTUAL_DISTRUST = "CDSS012"
#: A rule cannot be compiled by the SQL execution backend and will fall
#: back to the Python executor.
SQL_FALLBACK = "CDSS013"
#: The spec document itself is malformed: unparsable clause, unknown
#: directive, bad key/store/sync/execution declaration.
MALFORMED_SPEC = "CDSS014"


@dataclass(frozen=True)
class CodeInfo:
    """Metadata for one diagnostic code."""

    code: str
    severity: str
    title: str
    description: str


#: Registry of every diagnostic code, keyed by code string.
REGISTRY: Dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo(
            UNSAFE_RULE,
            ERROR,
            "unsafe rule",
            "A head, negated-atom or comparison variable is not bound by a "
            "positive body atom (range restriction).",
        ),
        CodeInfo(
            UNSTRATIFIABLE,
            ERROR,
            "unstratifiable program",
            "Negation occurs inside a recursive cycle; no stratification "
            "exists and fixpoint semantics are undefined.",
        ),
        CodeInfo(
            WEAK_ACYCLICITY,
            ERROR,
            "weak-acyclicity violation",
            "The skolemized mapping dependency graph has a cycle through an "
            "existential position; update exchange (the chase) may not "
            "terminate.",
        ),
        CodeInfo(
            ARITY_MISMATCH,
            ERROR,
            "arity mismatch",
            "An atom's arity disagrees with the relation schema or with "
            "other uses of the same predicate.",
        ),
        CodeInfo(
            UNKNOWN_RELATION,
            ERROR,
            "unknown relation",
            "An atom or declaration references a relation the peer schema "
            "does not declare.",
        ),
        CodeInfo(
            UNKNOWN_PEER,
            ERROR,
            "unknown peer",
            "A mapping, trust row or key declaration references an "
            "undeclared peer.",
        ),
        CodeInfo(
            DUPLICATE_MAPPING,
            ERROR,
            "duplicate mapping id",
            "Two mappings share the same id; provenance and sync reports "
            "would be ambiguous.",
        ),
        CodeInfo(
            ISOLATED_PEER,
            WARNING,
            "isolated peer",
            "The peer is source or target of no mapping; update exchange "
            "never moves data to or from it.",
        ),
        CodeInfo(
            REDUNDANT_MAPPING,
            WARNING,
            "redundant mapping",
            "The mapping duplicates another mapping or copies a peer onto "
            "itself; it adds work but no new facts.",
        ),
        CodeInfo(
            SHADOWED_TRUST,
            WARNING,
            "shadowed trust row",
            "The trust row repeats the effective default priority or "
            "targets the owning peer (own updates are always trusted); it "
            "can never change a reconciliation outcome.",
        ),
        CodeInfo(
            UNSATISFIABLE_TRUST,
            WARNING,
            "unsatisfiable trust row",
            "The trust row grants positive priority to a peer whose "
            "updates cannot reach the owner through any mapping path.",
        ),
        CodeInfo(
            MUTUAL_DISTRUST,
            WARNING,
            "mutual distrust cycle",
            "Two peers exchange updates bidirectionally while assigning "
            "each other priority 0; every exchanged update is rejected.",
        ),
        CodeInfo(
            SQL_FALLBACK,
            INFO,
            "sql fallback",
            "The rule cannot be compiled to SQL and will run on the Python "
            "executor (a whole-program fallback when the sql backend is "
            "selected).",
        ),
        CodeInfo(
            MALFORMED_SPEC,
            ERROR,
            "malformed spec",
            "The spec document is structurally invalid: unparsable clause, "
            "unknown directive, or a bad key/store/sync/execution "
            "declaration.",
        ),
    )
}


def severity_of(code: str) -> str:
    """Default severity for ``code`` (``error`` when the code is unknown)."""
    info = REGISTRY.get(code)
    return info.severity if info is not None else ERROR


def title_of(code: str) -> str:
    """Short human title for ``code``."""
    info = REGISTRY.get(code)
    return info.title if info is not None else "unknown diagnostic"
