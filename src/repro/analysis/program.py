"""Static analyses over datalog programs.

Works on :class:`~repro.datalog.ast.Program` objects (typically parsed with
``validate=False`` so every problem is reported, not just the first):

* rule safety / range restriction (``CDSS001``),
* stratifiability — negation through recursion (``CDSS002``), with the
  witnessing predicate cycle named instead of a bare boolean,
* arity consistency of each predicate across the program (``CDSS004``),
* SQL-backend compilability prediction (``CDSS013``): which rules the
  :class:`~repro.datalog.sql_executor.SQLExecutionBackend` would punt back
  to the Python executor, and why.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..datalog.ast import Atom, Program, Rule
from ..errors import SourceSpan, UnsafeRuleError
from . import codes
from .diagnostics import DiagnosticReport
from .graphs import shortest_path_within, strongly_connected_components


def _rule_subject(rule: Rule) -> str:
    return rule.label or rule.head.predicate


def check_safety(program: Program, report: DiagnosticReport) -> None:
    """Report every unsafe (range-unrestricted) rule as ``CDSS001``."""
    for rule in program.rules:
        try:
            rule.validate()
        except UnsafeRuleError as unsafe:
            report.add(
                codes.UNSAFE_RULE,
                str(unsafe),
                span=unsafe.span or rule.span,
                subject=_rule_subject(rule),
            )


def check_stratification(program: Program, report: DiagnosticReport) -> None:
    """Report negation-through-recursion cycles as ``CDSS002``.

    This reimplements the cycle detection of
    :func:`repro.datalog.stratification.stratum_numbers` but keeps *where*:
    each diagnostic names the offending negated atom, its rule, and the
    predicate cycle the negation closes.
    """
    adjacency: Dict[str, List[str]] = {}
    nodes: List[str] = []
    for rule in program.rules:
        for predicate in (rule.head.predicate, *rule.body_predicates()):
            if predicate not in adjacency:
                adjacency[predicate] = []
                nodes.append(predicate)
    for head, body, _negated in program.dependency_edges():
        if body not in adjacency[head]:
            adjacency[head].append(body)
    component = strongly_connected_components(nodes, adjacency)

    for rule in program.rules:
        head = rule.head.predicate
        for atom in rule.negative_body:
            if component.get(head) != component.get(atom.predicate):
                continue
            cycle = shortest_path_within(atom.predicate, head, adjacency, component)
            path = " -> ".join((head, *cycle, head))
            report.add(
                codes.UNSTRATIFIABLE,
                f"negation through recursion: rule for {head!r} negates "
                f"{atom.predicate!r} inside the cycle {path}; the program "
                "cannot be stratified",
                span=atom.span or rule.span,
                subject=_rule_subject(rule),
            )


def check_arities(program: Program, report: DiagnosticReport) -> None:
    """Report predicates used with inconsistent arities as ``CDSS004``."""
    seen: Dict[str, Tuple[int, Optional[SourceSpan]]] = {}

    def visit(atom: Atom, rule: Rule) -> None:
        known = seen.get(atom.predicate)
        if known is None:
            seen[atom.predicate] = (atom.arity, atom.span or rule.span)
            return
        arity, first_span = known
        if atom.arity != arity:
            first = f" (first used with {arity} at line {first_span.line})" if first_span else f" (first used with {arity})"
            report.add(
                codes.ARITY_MISMATCH,
                f"predicate {atom.predicate!r} used with arity {atom.arity}, "
                f"but elsewhere with arity {arity}{first}",
                span=atom.span or rule.span,
                subject=atom.predicate,
            )

    for rule in program.rules:
        visit(rule.head, rule)
        for literal in rule.body:
            if isinstance(literal, Atom):
                visit(literal, rule)


def sql_fallback_reasons(program: Program) -> List[Tuple[Rule, str]]:
    """``(rule, reason)`` for every rule the SQL backend cannot compile."""
    from ..datalog.sql_executor import rule_fallback_reason

    fallbacks: List[Tuple[Rule, str]] = []
    for rule in program.rules:
        try:
            reason = rule_fallback_reason(rule)
        except UnsafeRuleError:
            continue  # already a CDSS001; compiling it is moot
        except Exception as error:  # uncompilable for a deeper reason
            reason = str(error)
        if reason is not None:
            fallbacks.append((rule, reason))
    return fallbacks


def check_sql_compilability(
    program: Program, report: DiagnosticReport, *, sql_selected: bool = False
) -> None:
    """Report rules the SQL backend would punt to Python as ``CDSS013``.

    The finding is informational by default and a warning when the sql
    backend is actually selected (one such rule makes the whole program run
    on the Python executor).
    """
    severity = codes.WARNING if sql_selected else codes.INFO
    consequence = (
        "; the sql backend will run the whole program on the Python executor"
        if sql_selected
        else ""
    )
    for rule, reason in sql_fallback_reasons(program):
        report.add(
            codes.SQL_FALLBACK,
            f"rule {_rule_subject(rule)!r} cannot be compiled to SQL "
            f"({reason}){consequence}",
            severity=severity,
            span=rule.span,
            subject=_rule_subject(rule),
        )


def analyze_program(
    program: Program,
    *,
    sql_selected: bool = False,
    source: Optional[str] = None,
) -> DiagnosticReport:
    """Run every program-level analysis and return the combined report."""
    report = DiagnosticReport()
    check_safety(program, report)
    check_stratification(program, report)
    check_arities(program, report)
    check_sql_compilability(program, report, sql_selected=sql_selected)
    report.sort()
    if source is not None:
        report = report.with_source(source)
    return report
