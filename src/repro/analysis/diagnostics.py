"""Diagnostic records and reports for the CDSS static analyzer.

A :class:`Diagnostic` is one finding: a stable ``CDSS0xx`` code, a severity,
a message, and (when known) the :class:`~repro.errors.SourceSpan` of the
offending spec/program text plus the object (rule label, mapping id, peer
name) it concerns.  A :class:`DiagnosticReport` is an ordered collection with
human and JSON renderings, used by ``python -m repro.lint``,
``cdss.analyze()`` and ``NetworkBuilder.build(strict=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

from ..errors import SourceSpan
from . import codes as _codes

_SEVERITY_RANK = {_codes.ERROR: 0, _codes.WARNING: 1, _codes.INFO: 2}


def message_of(error: BaseException) -> str:
    """``str(error)`` without the ``[CDSSxxx]`` prefix coded errors render.

    Diagnostics carry the code in a dedicated field, so keeping the prefix
    in the message would print it twice.
    """
    text = str(error)
    code = getattr(error, "code", None)
    if code:
        prefix = f"[{code}] "
        if text.startswith(prefix):
            text = text[len(prefix) :]
    return text


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        code: Stable ``CDSS0xx`` code (see :mod:`repro.analysis.codes`).
        message: Human-readable description of this specific finding.
        severity: ``"error"``, ``"warning"`` or ``"info"``; defaults to the
            registry severity for the code.
        span: Location in the source document, when known.
        source: Name of the document the span refers to (file path or a
            label like ``"<spec>"``).
        subject: The object the finding concerns — a mapping id, rule label,
            peer name, or predicate — for grouping and machine consumption.
    """

    code: str
    message: str
    severity: str = ""
    span: Optional[SourceSpan] = None
    source: Optional[str] = None
    subject: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.severity:
            object.__setattr__(self, "severity", _codes.severity_of(self.code))

    @property
    def is_error(self) -> bool:
        return self.severity == _codes.ERROR

    @property
    def location(self) -> str:
        """``source:line:column`` prefix used in human rendering."""
        origin = self.source or (self.span.source if self.span else None) or "<input>"
        if self.span is not None:
            return f"{origin}:{self.span.line}:{self.span.column}"
        return origin

    def render(self) -> str:
        """One human-readable line, ``path:line:col: severity CDSSxxx: msg``."""
        return f"{self.location}: {self.severity} {self.code}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.source is not None:
            payload["source"] = self.source
        if self.subject is not None:
            payload["subject"] = self.subject
        if self.span is not None:
            payload["line"] = self.span.line
            payload["column"] = self.span.column
            if self.span.end_line is not None:
                payload["end_line"] = self.span.end_line
            if self.span.end_column is not None:
                payload["end_column"] = self.span.end_column
        return payload

    def _sort_key(self) -> tuple:
        return (
            self.source or "",
            self.span.line if self.span else 0,
            self.span.column if self.span else 0,
            _SEVERITY_RANK.get(self.severity, 3),
            self.code,
            self.message,
        )


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics for one analyzed document."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: str = "",
        span: Optional[SourceSpan] = None,
        source: Optional[str] = None,
        subject: Optional[str] = None,
    ) -> Diagnostic:
        diagnostic = Diagnostic(
            code, message, severity=severity, span=span, source=source, subject=subject
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def sort(self) -> "DiagnosticReport":
        """Sort by (source, position, severity, code); returns self."""
        self.diagnostics.sort(key=Diagnostic._sort_key)
        return self

    def with_source(self, source: str) -> "DiagnosticReport":
        """Return a copy with ``source`` filled in on diagnostics lacking one."""
        rewritten = [
            d
            if d.source is not None
            else Diagnostic(
                d.code,
                d.message,
                severity=d.severity,
                span=d.span,
                source=source,
                subject=d.subject,
            )
            for d in self.diagnostics
        ]
        return DiagnosticReport(rewritten)

    # -- queries ------------------------------------------------------------
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == _codes.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == _codes.WARNING]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> List[str]:
        """The distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    @property
    def ok(self) -> bool:
        """True when the report contains no error-severity diagnostics."""
        return not self.errors()

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # -- rendering ----------------------------------------------------------
    def render(self) -> str:
        """Human rendering: one line per diagnostic plus a summary line."""
        lines = [d.render() for d in self.diagnostics]
        errors, warnings = len(self.errors()), len(self.warnings())
        infos = len(self.diagnostics) - errors - warnings
        summary = f"{errors} error(s), {warnings} warning(s), {infos} info(s)"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "ok": self.ok,
        }

    def raise_if_errors(self, context: str = "network spec") -> None:
        """Raise :class:`~repro.errors.SpecError` when errors are present.

        The exception message embeds the rendered error lines so strict
        builds fail with the same text the linter prints.
        """
        errors = self.errors()
        if not errors:
            return
        from ..errors import SpecError

        detail = "\n".join(d.render() for d in errors)
        raise SpecError(
            f"static analysis found {len(errors)} error(s) in {context}:\n{detail}",
            code=errors[0].code,
            span=errors[0].span,
        )
