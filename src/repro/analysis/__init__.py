"""Static analysis for CDSS networks and datalog programs.

The analyzer examines a :class:`~repro.api.spec.NetworkSpec` or a
:class:`~repro.datalog.ast.Program` *before* anything runs and reports
:class:`Diagnostic` findings with stable ``CDSS0xx`` codes, severities and
source spans:

* chase termination — weak acyclicity of the skolemized mapping dependency
  graph (``CDSS003``),
* rule safety / range restriction (``CDSS001``) and stratifiability
  (``CDSS002``),
* schema consistency — unknown relations/peers, arity mismatches, duplicate
  mapping ids (``CDSS004``–``CDSS007``),
* network shape — isolated peers, redundant mappings (``CDSS008``/``009``),
* trust-policy lints — shadowed, unsatisfiable, and mutually-distrusting
  rows (``CDSS010``–``012``), and
* SQL-backend compilability prediction (``CDSS013``).

Entry points: ``python -m repro.lint`` (CLI), :func:`analyze_network_spec`,
:func:`analyze_program`, ``cdss.analyze()``, and
``NetworkBuilder.build(strict=True)``.

This module is import-light on purpose — only the diagnostics framework and
code registry load eagerly (lower layers import them for error codes); the
analyzers themselves resolve lazily on first attribute access.
"""

from __future__ import annotations

from . import codes
from .codes import REGISTRY, CodeInfo, severity_of, title_of
from .diagnostics import Diagnostic, DiagnosticReport

__all__ = [
    "codes",
    "CodeInfo",
    "REGISTRY",
    "severity_of",
    "title_of",
    "Diagnostic",
    "DiagnosticReport",
    "analyze_program",
    "analyze_network_spec",
    "analyze_system",
    "weak_acyclicity_violations",
    "position_graph",
]

_LAZY = {
    "analyze_program": ("program", "analyze_program"),
    "sql_fallback_reasons": ("program", "sql_fallback_reasons"),
    "analyze_network_spec": ("network", "analyze_network_spec"),
    "analyze_system": ("network", "analyze_system"),
    "weak_acyclicity_violations": ("chase", "weak_acyclicity_violations"),
    "position_graph": ("chase", "position_graph"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{target[0]}", __name__)
    value = getattr(module, target[1])
    globals()[name] = value
    return value
