"""Weak-acyclicity analysis of the skolemized mapping dependency graph.

Update exchange runs the chase over the network's tgds: existential head
variables become skolem terms (labelled nulls).  The chase is guaranteed to
terminate when the set of mappings is *weakly acyclic* (Fagin et al., "Data
exchange: semantics and query answering"): build a graph over schema
*positions* ``(peer, relation, index)`` with

* an **ordinary edge** from every body position of an exported variable to
  every head position of that same variable (values are copied), and
* a **special edge** from every body position of an exported variable to
  every head position holding an existential variable or skolem term (a new
  labelled null is *created from* the copied value).

A cycle through a special edge means a labelled null can feed a mapping
that creates another labelled null from it, nesting skolem terms without
bound — the runtime symptom is an update exchange that never reaches
fixpoint.  :func:`weak_acyclicity_violations` finds such cycles and returns
them with the witnessing positions, for the analyzer to surface as
``CDSS003``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from ..core.mapping import Mapping
from ..datalog.ast import SkolemTerm, Variable, term_variables
from .graphs import shortest_path_within, strongly_connected_components


@dataclass(frozen=True)
class Position:
    """One schema position: attribute ``index`` of ``peer``'s ``relation``."""

    peer: str
    relation: str
    index: int

    def __str__(self) -> str:
        return f"{self.peer}.{self.relation}[{self.index}]"


@dataclass(frozen=True)
class PositionEdge:
    """A dependency edge of the position graph.

    ``special`` marks edges into existential positions (labelled-null
    creation); ordinary edges copy values unchanged.
    """

    source: Position
    target: Position
    special: bool
    mapping_id: str


@dataclass(frozen=True)
class WeakAcyclicityViolation:
    """A cycle through a special edge, witnessing possible chase divergence."""

    edge: PositionEdge
    cycle: Tuple[Position, ...]

    def describe(self) -> str:
        path = " -> ".join(str(position) for position in self.cycle)
        return (
            f"mapping {self.edge.mapping_id!r} creates a labelled null at "
            f"{self.edge.target} from {self.edge.source}, which feeds back "
            f"through the cycle {path} -> {self.cycle[0]}; the chase may not "
            "terminate"
        )


def _body_positions(mapping: Mapping) -> Dict[Variable, List[Position]]:
    """Every body position of every variable, in deterministic order."""
    positions: Dict[Variable, List[Position]] = {}
    for atom in mapping.body:
        for index, term in enumerate(atom.terms):
            for variable in term_variables(term):
                positions.setdefault(variable, []).append(
                    Position(mapping.source_peer, atom.predicate, index)
                )
    return positions


def position_graph(mappings: Iterable[Mapping]) -> List[PositionEdge]:
    """Build the (de-duplicated) position graph for a set of mappings."""
    edges: List[PositionEdge] = []
    seen: Set[Tuple[Position, Position, bool]] = set()
    for mapping in mappings:
        body_positions = _body_positions(mapping)
        body_variables = set(body_positions)
        for atom in mapping.heads:
            for index, term in enumerate(atom.terms):
                target = Position(mapping.target_peer, atom.predicate, index)
                if isinstance(term, Variable) and term in body_variables:
                    sources = body_positions[term]
                    special = False
                elif isinstance(term, Variable) or isinstance(term, SkolemTerm):
                    # An existential variable or explicit skolem term: a new
                    # labelled null derived from every exported variable (or,
                    # for skolem terms, from the term's own arguments).
                    if isinstance(term, SkolemTerm):
                        feeding = set(term_variables(term)) & body_variables
                    else:
                        feeding = mapping.exported_variables() & body_variables
                    sources = [
                        position
                        for variable in sorted(feeding, key=lambda v: v.name)
                        for position in body_positions[variable]
                    ]
                    special = True
                else:
                    continue
                for source in sources:
                    key = (source, target, special)
                    if key in seen:
                        continue
                    seen.add(key)
                    edges.append(PositionEdge(source, target, special, mapping.mapping_id))
    return edges


def weak_acyclicity_violations(
    mappings: Iterable[Mapping],
) -> List[WeakAcyclicityViolation]:
    """All special edges that lie on a cycle, one violation per mapping.

    Returns an empty list exactly when the mapping set is weakly acyclic.
    """
    edges = position_graph(mappings)
    adjacency: Dict[Position, List[Position]] = {}
    nodes: List[Position] = []
    seen_nodes: Set[Position] = set()
    for edge in edges:
        adjacency.setdefault(edge.source, []).append(edge.target)
        for node in (edge.source, edge.target):
            if node not in seen_nodes:
                seen_nodes.add(node)
                nodes.append(node)
    component = strongly_connected_components(nodes, adjacency)

    violations: List[WeakAcyclicityViolation] = []
    reported: Set[str] = set()
    for edge in edges:
        if not edge.special:
            continue
        if component.get(edge.source) != component.get(edge.target):
            continue
        if edge.mapping_id in reported:
            continue
        reported.add(edge.mapping_id)
        # Cycle witness: source -> target (the special edge), then the
        # shortest way back from target to source within the SCC.
        if edge.source == edge.target:
            cycle = (edge.source,)
        else:
            back = shortest_path_within(edge.target, edge.source, adjacency, component)
            cycle = (edge.source,) + tuple(back)
        violations.append(WeakAcyclicityViolation(edge, cycle))
    return violations
