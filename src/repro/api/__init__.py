"""The declarative public API of the CDSS.

This package is the primary surface for building and driving networks:

* :mod:`repro.api.spec` — the textual/dict network-spec language
  (``CDSS.from_spec``), with full round-tripping via :func:`spec_of`;
* :mod:`repro.api.builder` — the fluent :class:`NetworkBuilder` with
  build-time validation;
* :mod:`repro.api.sync` — one-call :func:`synchronize` orchestration
  (``cdss.sync()``) returning a structured :class:`SyncReport`;
* :mod:`repro.api.async_sync` — the pipelined :func:`async_synchronize`
  runtime (``cdss.sync(runtime="async")``): overlapped virtual-time
  transfers with bounded-queue admission control, identical reports;
* :mod:`repro.api.query` — ad-hoc datalog queries over a peer's instance
  (``cdss.query()``), optionally provenance-annotated.

The imperative facade (``add_peer``/``add_mapping``/``publish``/``reconcile``)
remains fully supported underneath; everything here composes it.
"""

from .async_sync import AsyncSyncRuntime, VirtualTimeEventLoop, async_synchronize
from .builder import NetworkBuilder, PeerBuilder, build_network
from .query import QueryResult, run_query
from .spec import (
    NetworkSpec,
    PeerSpec,
    StoreSpec,
    SyncSpec,
    parse_network_spec,
    spec_of,
    sync_spec_of,
)
from .sync import DEFAULT_MAX_ROUNDS, SyncReport, SyncRound, sync_round, synchronize

__all__ = [
    "AsyncSyncRuntime",
    "DEFAULT_MAX_ROUNDS",
    "NetworkBuilder",
    "NetworkSpec",
    "PeerBuilder",
    "PeerSpec",
    "QueryResult",
    "StoreSpec",
    "SyncReport",
    "SyncRound",
    "SyncSpec",
    "VirtualTimeEventLoop",
    "async_synchronize",
    "build_network",
    "parse_network_spec",
    "run_query",
    "spec_of",
    "sync_round",
    "sync_spec_of",
    "synchronize",
]
