"""One-call synchronization of the whole network.

``cdss.sync()`` replaces the hand-rolled publish/reconcile loops of the
examples and benchmarks: it repeatedly runs *rounds* — every online peer
publishes its pending transactions, then every online peer reconciles —
until a round observes nothing new (quiescence).  Offline peers are skipped
and reported, never silently dropped; deferred conflicts do not block
quiescence (they await the administrator) but are surfaced per peer in the
returned :class:`SyncReport`.

Centralizing the loop here gives later performance work (batching,
async publication, sharded reconciliation) a single seam to optimize
without touching user code.

When the system runs in gossip sync mode (``StoreConfig.sync_mode ==
"gossip"``), each round inserts an epidemic anti-entropy phase between the
publish and reconcile passes: freshly published entries spread peer-to-peer
via sketch reconciliation sessions (:mod:`repro.p2p.gossip`) so the
reconcile pass answers "what did I miss" from each peer's local cache.
:attr:`SyncReport.gossip` then carries the phase's traffic accounting —
rounds, sessions, messages, bytes, decode failures, fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import PeerError, SyncError
from ..obs import NULL_SPAN as _NO_SPAN

#: Rounds after which :func:`synchronize` gives up and raises SyncError.
DEFAULT_MAX_ROUNDS = 25


def metrics_enabled(cdss) -> bool:
    """True when reports should carry the per-run metrics view."""
    obs = getattr(cdss, "obs", None)
    if obs is None:
        return False
    if obs.tracer is not None:
        return True
    config = getattr(cdss, "config", None)
    return config is not None and config.store.observability != "off"


@dataclass
class SyncRound:
    """One publish-then-reconcile pass over the selected peers."""

    index: int
    published: list = field(default_factory=list)  # list[PublishOutcome]
    reconciled: list = field(default_factory=list)  # list[ReconcileOutcome]
    skipped_offline: list[str] = field(default_factory=list)

    @property
    def published_transactions(self) -> int:
        return sum(len(outcome.published) for outcome in self.published)

    @property
    def translated_changes(self) -> int:
        return sum(outcome.translated_changes for outcome in self.published)

    @property
    def candidates_considered(self) -> int:
        return sum(outcome.candidates_considered for outcome in self.reconciled)

    def is_quiescent(self) -> bool:
        """True when the round neither published nor translated anything new."""
        return self.published_transactions == 0 and self.candidates_considered == 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "published": [outcome.to_dict() for outcome in self.published],
            "reconciled": [outcome.to_dict() for outcome in self.reconciled],
            "skipped_offline": list(self.skipped_offline),
            "published_transactions": self.published_transactions,
            "translated_changes": self.translated_changes,
            "candidates_considered": self.candidates_considered,
            "quiescent": self.is_quiescent(),
        }


@dataclass
class SyncReport:
    """Structured, serializable outcome of one :func:`synchronize` call."""

    peers: list[str]
    rounds: list[SyncRound] = field(default_factory=list)
    converged: bool = False
    #: Per-peer count of conflicts still awaiting the administrator.
    open_conflicts: dict[str, int] = field(default_factory=dict)
    #: Shard/replica health of a distributed update store (``None`` for the
    #: centralized archive): replication status, degraded writes, repairs.
    store_health: Optional[dict] = None
    #: Gossip anti-entropy traffic accounting (``None`` in cursor mode):
    #: epidemic rounds run, sessions, messages, bytes (split into sketch and
    #: entry bytes), entries delivered, decode failures, cursor fallbacks.
    gossip: Optional[dict] = None
    #: Scheduler accounting filled in by the async runtime
    #: (:mod:`repro.api.async_sync`): mode, workers, queue depth, virtual
    #: seconds on the network clock, backpressure stalls, peak in-flight
    #: transfers.  ``None`` when the serial loop ran the sync.
    runtime: Optional[dict] = None
    #: Per-run view of the shared metrics registry (:mod:`repro.obs`):
    #: counters moved during this sync plus current gauges, under stable
    #: dotted names.  ``None`` unless ``StoreConfig.observability`` is
    #: ``"metrics"``/``"trace"`` or a tracer was installed via
    #: ``cdss.sync(trace=...)``.
    metrics: Optional[dict] = None

    # -- aggregate views ------------------------------------------------------
    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def published_transactions(self) -> int:
        return sum(round_.published_transactions for round_ in self.rounds)

    @property
    def translated_changes(self) -> int:
        return sum(round_.translated_changes for round_ in self.rounds)

    @property
    def skipped_offline(self) -> list[str]:
        """Peers that were offline during at least one round (deduplicated)."""
        seen: set[str] = set()
        ordered: list[str] = []
        for round_ in self.rounds:
            for peer in round_.skipped_offline:
                if peer not in seen:
                    seen.add(peer)
                    ordered.append(peer)
        return ordered

    def _decisions(self, peer: str, attribute: str) -> list[str]:
        # Set-backed dedup in first-seen order: long campaigns accumulate
        # thousands of ids, where the old ``id not in list`` scan was O(n²).
        seen: set[str] = set()
        collected: list[str] = []
        for round_ in self.rounds:
            for outcome in round_.reconciled:
                if outcome.peer == peer:
                    for txn_id in getattr(outcome, attribute):
                        if txn_id not in seen:
                            seen.add(txn_id)
                            collected.append(txn_id)
        return collected

    def accepted(self, peer: str) -> list[str]:
        """Transaction ids the peer accepted during this sync (any round)."""
        return self._decisions(peer, "accepted")

    def rejected(self, peer: str) -> list[str]:
        return self._decisions(peer, "rejected")

    def deferred(self, peer: str) -> list[str]:
        return self._decisions(peer, "deferred")

    def pending(self, peer: str) -> list[str]:
        """Transactions still undecided at the peer after the final round."""
        for round_ in reversed(self.rounds):
            for outcome in round_.reconciled:
                if outcome.peer == peer:
                    return list(outcome.pending)
        return []

    def decision_summary(self, peer: str) -> dict[str, int]:
        return {
            "accepted": len(self.accepted(peer)),
            "rejected": len(self.rejected(peer)),
            "deferred": len(self.deferred(peer)),
            "pending": len(self.pending(peer)),
            "open_conflicts": self.open_conflicts.get(peer, 0),
        }

    def to_dict(self) -> dict:
        data = {
            "peers": list(self.peers),
            "rounds": [round_.to_dict() for round_ in self.rounds],
            "round_count": self.round_count,
            "converged": self.converged,
            "published_transactions": self.published_transactions,
            "translated_changes": self.translated_changes,
            "skipped_offline": self.skipped_offline,
            "open_conflicts": dict(self.open_conflicts),
            "decisions": {peer: self.decision_summary(peer) for peer in self.peers},
        }
        if self.store_health is not None:
            data["store_health"] = self.store_health
        if self.gossip is not None:
            data["gossip"] = dict(self.gossip)
        if self.runtime is not None:
            data["runtime"] = dict(self.runtime)
        if self.metrics is not None:
            data["metrics"] = dict(self.metrics)
        return data


def _selected_peers(cdss, peers: Optional[Sequence[str]]) -> list[str]:
    names = list(peers) if peers is not None else cdss.catalog.peer_names()
    if not names:
        raise SyncError("there are no peers to synchronize")
    for name in names:
        if not cdss.catalog.has_peer(name):
            raise PeerError(f"unknown peer {name!r}")
    return names


#: Nominal wire size of one transaction, used by the latency model to price
#: publish uplinks and reconcile downlinks (both runtimes use the same rate).
TXN_WIRE_BYTES = 512


def _account_publish_traffic(cdss, round_: SyncRound) -> None:
    """Charge the round's publish uplinks to the network's latency model.

    The serial loop transmits sequentially, so each transfer advances the
    virtual clock by its full delay — the baseline the async runtime's
    overlapped transfers are measured against.
    """
    network = getattr(cdss, "network", None)
    if network is None or network.latency is None:
        return
    for outcome in round_.published:
        if outcome.published:
            network.transmit(
                outcome.peer,
                "archive",
                "publish-uplink",
                TXN_WIRE_BYTES * len(outcome.published),
            )


def _account_reconcile_traffic(cdss, outcome) -> None:
    """Charge one peer's reconcile downlink to the network's latency model."""
    network = getattr(cdss, "network", None)
    if network is None or network.latency is None:
        return
    if outcome.candidates_considered:
        network.transmit(
            "archive",
            outcome.peer,
            "entries-downlink",
            TXN_WIRE_BYTES * outcome.candidates_considered,
        )


def sync_round(cdss, peers: Optional[Sequence[str]] = None, index: int = 1) -> SyncRound:
    """Run one publish-then-reconcile pass over the selected (online) peers."""
    names = _selected_peers(cdss, peers)
    round_ = SyncRound(index=index)
    obs = getattr(cdss, "obs", None)
    with obs.span("sync.round", index=index) if obs is not None else _NO_SPAN:
        publish = cdss.publish_all(names)
        round_.published = publish.outcomes
        round_.skipped_offline = publish.skipped_offline
        _account_publish_traffic(cdss, round_)
        gossip = getattr(cdss, "gossip", None)
        if gossip is not None and round_.published_transactions > 0:
            # Epidemic anti-entropy phase: spread the round's publications
            # peer-to-peer before anyone reconciles, so the reconcile pass
            # below reads from converged local caches instead of the
            # archive.  With nothing published there is nothing to spread —
            # reconcile's own catch-up covers any stragglers — so the
            # quiescent final round skips the session fan-out entirely
            # instead of burning a full sketch exchange per partner just to
            # confirm emptiness.
            gossip.run_until_converged()
        for name in names:
            if name not in publish.skipped_offline:
                outcome = cdss.reconcile(name)
                round_.reconciled.append(outcome)
                _account_reconcile_traffic(cdss, outcome)
    if obs is not None:
        obs.metrics.counter_add("sync.rounds", 1)
    return round_


def synchronize(
    cdss,
    peers: Optional[Sequence[str]] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> SyncReport:
    """Publish and reconcile across the network until quiescence.

    Args:
        cdss: The system to synchronize.
        peers: Restrict the sync to these peers (default: every peer).
            Offline peers are skipped and recorded, not treated as errors.
        max_rounds: Safety bound; exceeding it raises :class:`SyncError`
            (a correctly functioning network converges in a handful of
            rounds because reconciliation applies updates directly, without
            creating new publishable transactions).

    Returns:
        A :class:`SyncReport` covering every round, including per-peer
        decisions and conflicts left open for the administrator.
    """
    names = _selected_peers(cdss, peers)
    report = SyncReport(peers=names)
    gossip = getattr(cdss, "gossip", None)
    gossip_before = gossip.stats.snapshot() if gossip is not None else None
    gossip_rounds_before = gossip.rounds_run if gossip is not None else 0
    obs = getattr(cdss, "obs", None)
    metrics_before = obs.metrics.snapshot() if obs is not None else None
    for index in range(1, max_rounds + 1):
        round_ = sync_round(cdss, names, index=index)
        report.rounds.append(round_)
        if round_.is_quiescent():
            report.converged = True
            break
    else:
        finalize_report(
            cdss, report, gossip_before, gossip_rounds_before, metrics_before
        )
        raise SyncError(
            f"synchronization did not reach quiescence within {max_rounds} rounds",
            report=report,
        )
    finalize_report(cdss, report, gossip_before, gossip_rounds_before, metrics_before)
    return report


def finalize_report(
    cdss,
    report: SyncReport,
    gossip_before=None,
    gossip_rounds_before: int = 0,
    metrics_before=None,
) -> SyncReport:
    """Fill in the post-loop sections of a report (conflicts, health, gossip).

    Shared by the convergent and non-convergent exits of :func:`synchronize`
    (the latter attaches the finalized partial report to the raised
    :class:`SyncError`) and by the async runtime.
    """
    report.open_conflicts = {
        name: len(cdss.open_conflicts(name)) for name in report.peers
    }
    health = getattr(cdss.store, "health", None)
    if callable(health):
        report.store_health = health()
    gossip = getattr(cdss, "gossip", None)
    if gossip is not None:
        store_config = cdss.config.store
        report.gossip = {
            "mode": "gossip",
            "sketch": store_config.sketch,
            "fanout": store_config.gossip_fanout,
        }
        report.gossip.update(
            gossip.summary(since=gossip_before, rounds_before=gossip_rounds_before)
        )
    if metrics_before is not None and metrics_enabled(cdss):
        report.metrics = cdss.obs.metrics.since(metrics_before)
    return report
