"""Fluent, validating construction of CDSS networks.

:class:`NetworkBuilder` is the programmatic counterpart of the textual spec
language: each call records declarative intent, and :meth:`NetworkBuilder.build`
validates the whole description at once (unknown peers, duplicate ids, arity
mismatches, trust entries for unregistered participants) before any system
state is created — so a half-built network never leaks out.

::

    cdss = (
        NetworkBuilder("quickstart")
        .peer("Source").relation("R", "key", "value", key=("key",))
        .peer("Target").relation("R", "key", "value", key=("key",))
        .mapping("[M_ST] @Target.R(k, v) :- @Source.R(k, v).")
        .build()
    )
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, Optional, Sequence, Union

from ..config import SystemConfig
from ..analysis import codes as _codes
from ..core.mapping import Mapping, identity_mapping, mapping_from_tgd
from ..errors import SpecError
from .spec import NetworkSpec, PeerSpec, StoreSpec, SyncSpec, TRUST_DEFAULT


class PeerBuilder:
    """Builder for one peer; created by :meth:`NetworkBuilder.peer`.

    Every method returns a builder, so declarations chain fluently; calls
    that concern the network as a whole (``peer``, ``mapping``, ``build``)
    delegate back to the owning :class:`NetworkBuilder`.
    """

    def __init__(self, network: "NetworkBuilder", spec: PeerSpec) -> None:
        self._network = network
        self._spec = spec

    @property
    def name(self) -> str:
        return self._spec.name

    # -- peer-local declarations --------------------------------------------
    def relation(
        self, name: str, *attributes: str, key: Sequence[str] = ()
    ) -> "PeerBuilder":
        """Declare a relation ``name(attributes...)`` with an optional key."""
        if name in self._spec.relations:
            raise SpecError(
                f"relation {name!r} of peer {self._spec.name!r} is declared twice",
                code=_codes.MALFORMED_SPEC,
            )
        if not attributes:
            raise SpecError(
                f"relation {name!r} of peer {self._spec.name!r} needs at least one attribute"
            )
        self._spec.relations[name] = list(attributes)
        if key:
            self._spec.keys[name] = list(key)
        return self

    def trust(self, peer: str, priority: int) -> "PeerBuilder":
        """Assign a priority to updates originating at ``peer`` (0 = distrust)."""
        if priority < 0:
            raise SpecError("trust priorities must be non-negative")
        self._spec.trust[peer] = priority
        return self

    def trust_default(self, priority: int) -> "PeerBuilder":
        """Priority for updates from peers without an explicit trust entry."""
        return self.trust(TRUST_DEFAULT, priority)

    def trust_only(self, priorities: dict[str, int]) -> "PeerBuilder":
        """Trust exactly the listed peers; everyone else is distrusted."""
        for peer, priority in priorities.items():
            self.trust(peer, priority)
        return self.trust_default(0)

    # -- delegation back to the network builder ------------------------------
    def peer(self, name: str, schema_name: Optional[str] = None) -> "PeerBuilder":
        return self._network.peer(name, schema_name)

    def mapping(self, source: Union[str, Mapping], mapping_id: Optional[str] = None) -> "NetworkBuilder":
        return self._network.mapping(source, mapping_id)

    def identity(
        self,
        mapping_id: str,
        source_peer: str,
        target_peer: str,
        relations: Optional[Iterable[str]] = None,
    ) -> "NetworkBuilder":
        return self._network.identity(mapping_id, source_peer, target_peer, relations)

    def store(self, kind: str = "distributed", **knobs) -> "NetworkBuilder":
        return self._network.store(kind, **knobs)

    def sync(self, mode: str = "gossip", **knobs) -> "NetworkBuilder":
        return self._network.sync(mode, **knobs)

    def execution(self, backend: str = "sql") -> "NetworkBuilder":
        return self._network.execution(backend)

    def observe(self, mode: str = "metrics") -> "NetworkBuilder":
        return self._network.observe(mode)

    def spec(self) -> NetworkSpec:
        return self._network.spec()

    def build(
        self,
        storage_factory: Optional[Callable[[str], object]] = None,
        store_factory=None,
        *,
        strict: bool = False,
    ):
        return self._network.build(storage_factory, store_factory, strict=strict)


class NetworkBuilder:
    """Accumulates a :class:`NetworkSpec` and builds a validated CDSS."""

    def __init__(self, name: str = "network", config: Optional[SystemConfig] = None) -> None:
        self._spec = NetworkSpec(name=name)
        self._config = config
        #: Deferred identity-mapping requests, resolved at build time once
        #: both peers' relations are known.
        self._identities: list[tuple[str, str, str, Optional[list[str]]]] = []

    # -- declarations ---------------------------------------------------------
    def peer(self, name: str, schema_name: Optional[str] = None) -> PeerBuilder:
        """Open a new peer section and return its :class:`PeerBuilder`."""
        if name in self._spec.peers:
            raise SpecError(f"peer {name!r} is declared twice", code=_codes.MALFORMED_SPEC)
        peer_spec = PeerSpec(name=name, schema_name=schema_name)
        self._spec.peers[name] = peer_spec
        return PeerBuilder(self, peer_spec)

    def store(self, kind: str = "distributed", **knobs) -> "NetworkBuilder":
        """Select the update-store backend (``centralized``/``distributed``).

        Knobs: ``shards``, ``replication``, ``write_quorum``, ``read_quorum``,
        ``segment_size`` — unset ones defer to
        :class:`~repro.config.StoreConfig` defaults.
        """
        if self._spec.store is not None:
            raise SpecError("the store backend is declared twice")
        try:
            store = StoreSpec(kind=kind, **knobs)
        except TypeError as error:
            raise SpecError(f"bad store declaration: {error}") from None
        store.validate()
        self._spec.store = store
        return self

    def sync(self, mode: str = "gossip", **knobs) -> "NetworkBuilder":
        """Select the peer catch-up strategy (``cursor``/``gossip``).

        Knobs (gossip only): ``fanout``, ``sketch`` (``iblt``/``bloom``),
        ``capacity``, ``growth``, ``attempts`` — unset ones defer to
        :class:`~repro.config.StoreConfig` defaults.
        """
        if self._spec.sync is not None:
            raise SpecError("the sync mode is declared twice")
        try:
            sync = SyncSpec(mode=mode, **knobs)
        except TypeError as error:
            raise SpecError(f"bad sync declaration: {error}") from None
        sync.validate()
        self._spec.sync = sync
        return self

    def execution(self, backend: str = "sql") -> "NetworkBuilder":
        """Select the rule execution backend (``python``/``sql``).

        ``sql`` pushes compiled rule plans down into an in-memory SQLite
        mirror as ``INSERT ... SELECT`` statements
        (:mod:`repro.datalog.sql_executor`); ``python`` is the
        tuple-at-a-time closure executor default.
        """
        if self._spec.execution is not None:
            raise SpecError("the execution backend is declared twice")
        if backend not in ("python", "sql"):
            raise SpecError(
                f"execution backend must be 'python' or 'sql', got {backend!r}"
            )
        self._spec.execution = backend
        return self

    def observe(self, mode: str = "metrics") -> "NetworkBuilder":
        """Turn on the observability layer (``metrics``/``trace``).

        ``metrics`` populates the shared registry and the per-sync
        ``report.metrics`` deltas; ``trace`` additionally installs the
        deterministic span tracer for Chrome-trace export.
        """
        if self._spec.observe is not None:
            raise SpecError("the observe mode is declared twice")
        if mode not in ("off", "metrics", "trace"):
            raise SpecError(
                f"observe mode must be 'off', 'metrics' or 'trace', got {mode!r}"
            )
        self._spec.observe = mode if mode != "off" else None
        return self

    def mapping(
        self, source: Union[str, Mapping], mapping_id: Optional[str] = None
    ) -> "NetworkBuilder":
        """Add a mapping from tgd text (``[Id] @T.R(...) :- @S.R(...).``) or a Mapping."""
        if isinstance(source, Mapping):
            if mapping_id is not None and mapping_id != source.mapping_id:
                raise SpecError(
                    f"mapping id {mapping_id!r} does not match the Mapping's "
                    f"own id {source.mapping_id!r}"
                )
            self._spec.mappings.append(source)
        else:
            self._spec.mappings.append(mapping_from_tgd(source, mapping_id))
        return self

    def mappings(self, sources: Iterable[Union[str, Mapping]]) -> "NetworkBuilder":
        for source in sources:
            self.mapping(source)
        return self

    def identity(
        self,
        mapping_id: str,
        source_peer: str,
        target_peer: str,
        relations: Optional[Iterable[str]] = None,
    ) -> "NetworkBuilder":
        """Copy relations unchanged from ``source_peer`` to ``target_peer``.

        Without ``relations``, every relation the two peers share (same name
        and arity) is copied; one mapping per relation is produced, with ids
        ``{mapping_id}_{relation}``.
        """
        self._identities.append(
            (mapping_id, source_peer, target_peer,
             list(relations) if relations is not None else None)
        )
        return self

    # -- building -------------------------------------------------------------
    def _resolve_identities(self) -> None:
        for mapping_id, source_peer, target_peer, relations in self._identities:
            for role, name in (("source", source_peer), ("target", target_peer)):
                if name not in self._spec.peers:
                    raise SpecError(
                        f"identity mapping {mapping_id!r} references unknown "
                        f"{role} peer {name!r}",
                        code=_codes.UNKNOWN_PEER,
                    )
            source = self._spec.peers[source_peer]
            target = self._spec.peers[target_peer]
            if relations is None:
                shared = [
                    relation
                    for relation, attributes in source.relations.items()
                    if relation in target.relations
                    and len(target.relations[relation]) == len(attributes)
                ]
                if not shared:
                    raise SpecError(
                        f"identity mapping {mapping_id!r}: peers {source_peer!r} and "
                        f"{target_peer!r} share no relations of equal arity"
                    )
            else:
                shared = relations
                for relation in shared:
                    if relation not in source.relations or relation not in target.relations:
                        raise SpecError(
                            f"identity mapping {mapping_id!r}: relation {relation!r} "
                            f"is not shared by {source_peer!r} and {target_peer!r}"
                        )
            arities = {relation: len(source.relations[relation]) for relation in shared}
            self._spec.mappings.extend(
                identity_mapping(mapping_id, source_peer, target_peer, shared, arities)
            )
        self._identities = []

    def spec(self) -> NetworkSpec:
        """The validated :class:`NetworkSpec` accumulated so far."""
        self._resolve_identities()
        self._spec.validate()
        return self._spec

    def analyze(self):
        """Run the static analyzer on the accumulated spec.

        Returns a :class:`~repro.analysis.diagnostics.DiagnosticReport`; the
        spec must already be structurally parseable but need not be clean.
        """
        from ..analysis import analyze_network_spec

        self._resolve_identities()
        return analyze_network_spec(self._spec)

    def build(
        self,
        storage_factory: Optional[Callable[[str], object]] = None,
        store_factory=None,
        *,
        strict: bool = False,
    ):
        """Validate the whole description and construct the CDSS.

        Args:
            storage_factory: Optional ``peer name -> storage backend``
                callable; when given, every peer's local instance is created
                by it (e.g. ``lambda name: SQLiteInstance(f"{name}.db")``)
                instead of the in-memory default.
            store_factory: Optional ``(network, store_config) -> store``
                callable overriding the shared update archive; without it
                the spec's ``store`` section (merged over the config's
                :class:`~repro.config.StoreConfig`) picks centralized vs
                distributed.
            strict: Run the full static analyzer before construction and
                raise :class:`~repro.errors.SpecError` if it reports any
                error-severity diagnostic (weak-acyclicity violations,
                unsafe rules, schema mismatches, ...), not just the
                structural problems ``validate()`` catches.
        """
        from ..core.system import CDSS

        spec = self.spec()
        if strict:
            self.analyze().raise_if_errors(f"network {spec.name!r}")
        config = self._config
        overrides: dict = {}
        if spec.store is not None:
            overrides.update(
                {
                    config_field: value
                    for config_field, value in (
                        ("backend", spec.store.kind),
                        ("shard_count", spec.store.shards),
                        ("replication_factor", spec.store.replication),
                        ("write_quorum", spec.store.write_quorum),
                        ("read_quorum", spec.store.read_quorum),
                        ("segment_size", spec.store.segment_size),
                    )
                    if value is not None
                }
            )
        if spec.sync is not None:
            overrides.update(
                {
                    config_field: value
                    for config_field, value in (
                        ("sync_mode", spec.sync.mode),
                        ("gossip_fanout", spec.sync.fanout),
                        ("sketch", spec.sync.sketch),
                        ("sketch_capacity", spec.sync.capacity),
                        ("sketch_growth", spec.sync.growth),
                        ("sketch_attempts", spec.sync.attempts),
                        ("sync_runtime", spec.sync.runtime),
                        ("sync_workers", spec.sync.workers),
                    )
                    if value is not None
                }
            )
        if spec.observe is not None:
            overrides["observability"] = spec.observe
        if overrides:
            base = config or SystemConfig.default()
            config = replace(base, store=replace(base.store, **overrides))
        if spec.execution is not None:
            base = config or SystemConfig.default()
            config = replace(
                base,
                exchange=replace(base.exchange, execution_backend=spec.execution),
            )
        cdss = CDSS(config, store_factory=store_factory)
        cdss.name = spec.name
        for peer_spec in spec.peers.values():
            storage = storage_factory(peer_spec.name) if storage_factory else None
            cdss.add_peer(
                peer_spec.name, peer_spec.schema(), peer_spec.trust_policy(),
                storage=storage,
            )
        for mapping in spec.mappings:
            cdss.add_mapping(mapping)
        return cdss


def build_network(
    source,
    config: Optional[SystemConfig] = None,
    storage_factory: Optional[Callable[[str], object]] = None,
    store_factory=None,
    *,
    strict: bool = False,
):
    """Build a CDSS directly from a textual/dict/:class:`NetworkSpec` description."""
    from .spec import parse_network_spec

    spec = parse_network_spec(source)
    builder = NetworkBuilder(spec.name, config)
    builder._spec = spec
    return builder.build(storage_factory, store_factory, strict=strict)
