"""Ad-hoc datalog queries over one peer's local instance.

``cdss.query(peer, rule_text)`` evaluates a small datalog program against a
snapshot of the peer's instance and returns the rows of the *answer
predicate* — the head of the first rule.  With ``provenance=True`` the
evaluation additionally records a provenance graph and annotates every
answer row with its provenance polynomial over the peer's base tuples
(the how-provenance of the PODS'07 companion paper)::

    result = cdss.query(
        "Crete",
        "Answer(org, seq) :- OPS(org, prot, seq), prot = 'lacZ'.",
        provenance=True,
    )
    for row in result:
        print(row, result.provenance[row])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datalog.evaluation import Database, evaluate_program
from ..datalog.parser import parse_program
from ..datalog.plan import compile_program
from ..datalog.provenance_eval import evaluate_with_provenance
from ..errors import SpecError, UnknownRelationError


@dataclass
class QueryResult:
    """Rows of the answer predicate, optionally with provenance polynomials."""

    peer: str
    predicate: str
    rows: frozenset[tuple]
    #: ``{row: Polynomial}`` when the query ran with provenance, else None.
    provenance: Optional[dict] = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row) -> bool:
        return tuple(row) in self.rows

    def to_dict(self) -> dict:
        serialized: dict = {
            "peer": self.peer,
            "predicate": self.predicate,
            "rows": sorted((list(row) for row in self.rows), key=repr),
        }
        if self.provenance is not None:
            serialized["provenance"] = {
                repr(tuple(row)): str(polynomial)
                for row, polynomial in sorted(self.provenance.items(), key=repr)
            }
        return serialized


def run_query(
    cdss,
    peer_name: str,
    text: str,
    provenance: bool = False,
    max_depth: int = 16,
    max_monomials: Optional[int] = 10_000,
) -> QueryResult:
    """Evaluate ``text`` (one or more datalog rules) over a peer's instance.

    Body atoms may reference the peer's schema relations and any predicate
    defined by a rule of the query (in any order — evaluation stratifies the
    program); the head predicate of the first rule is the answer relation.
    """
    peer = cdss.peer(peer_name)
    program = parse_program(text)
    if not program.rules:
        raise SpecError(f"query {text!r} contains no rules")
    # Compile (and validate) before snapshotting the instance: unsafe or
    # unstratifiable queries fail fast, and repeated identical queries reuse
    # the cached join plans instead of re-planning per evaluation.
    compile_program(program)

    answer = program.rules[0].head.predicate
    defined = program.idb_predicates
    for rule in program.rules:
        for predicate in rule.body_predicates():
            if predicate in defined or peer.schema.has_relation(predicate):
                continue
            raise UnknownRelationError(
                f"query rule {rule!r} references {predicate!r}, which is neither "
                f"a relation of peer {peer_name!r} nor defined by the query"
            )

    database = Database.from_dict(peer.snapshot())
    if provenance:
        result = evaluate_with_provenance(program, database)
        rows = result.database.relation(answer)
        # The expansion budget keeps the per-row polynomial view bounded:
        # provenance is stored as a compact hash-consed DAG, and a row whose
        # expansion would exceed the budget raises a ProvenanceError naming
        # it instead of materialising a combinatorial polynomial.
        polynomials = {
            row: result.polynomial(
                answer, row, max_depth=max_depth, max_monomials=max_monomials
            )
            for row in rows
        }
        return QueryResult(peer_name, answer, rows, polynomials)

    evaluated = evaluate_program(program, database)
    return QueryResult(peer_name, answer, evaluated.relation(answer))
