"""Pipelined asyncio sync runtime with admission control.

The serial loop in :mod:`repro.api.sync` drives the network one peer at a
time: every transfer occupies the simulated timeline alone, so the virtual
clock advances by the *sum* of all message delays.  This module schedules
the same sync as a pipeline — independent online peers publish and
reconcile concurrently, publish fan-out to distributed-store shard replicas
overlaps with reconciliation downlinks — so the clock advances by the
*critical path* instead.

Three properties anchor the design:

* **Identical reports.**  Compute (epoch assignment, archive appends,
  update exchange, reconciliation decisions) is virtual-instant and runs in
  the exact canonical order of the serial loop, so both runtimes produce
  bit-identical :class:`~repro.api.sync.SyncReport` rounds on the same
  seeds — the property the simulator's concurrent-vs-serial oracle checks.
  Only the simulated *traffic* overlaps.

* **Virtual time, never wall-clock.**  Transfers are awaited on a
  :class:`VirtualTimeEventLoop` whose clock jumps straight to the next
  scheduled timer whenever no callback is ready.  A run over thousands of
  simulated seconds completes in milliseconds of wall time, and identical
  seeds give identical timelines.

* **Admission control.**  A shared worker semaphore caps transfers in
  flight, and each peer owns a bounded :class:`DeliveryQueue`; when a
  flooded peer's queue fills, producers block on ``put`` (a counted
  *backpressure stall*) instead of buffering without limit.

``report.runtime`` carries the scheduler accounting: virtual seconds on
the clock, transfer count, peak in-flight transfers, backpressure stalls,
and the deepest queue observed.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence

from ..errors import SyncError
from .sync import (
    DEFAULT_MAX_ROUNDS,
    TXN_WIRE_BYTES,
    SyncReport,
    SyncRound,
    _selected_peers,
    finalize_report,
)


class VirtualTimeEventLoop(asyncio.SelectorEventLoop):
    """An event loop whose ``time()`` is simulated and jumps, never sleeps.

    Whenever no callback is ready, the clock fast-forwards to the earliest
    scheduled timer, so ``await asyncio.sleep(delay)`` models a delay of
    simulated seconds at zero wall-clock cost.  Scheduling is single
    threaded and FIFO, which keeps runs deterministic.
    """

    def __init__(self) -> None:
        super().__init__()
        self._virtual_now = 0.0

    def time(self) -> float:
        return self._virtual_now

    def _run_once(self) -> None:
        if not self._ready and self._scheduled:
            when = self._scheduled[0]._when
            if when > self._virtual_now:
                self._virtual_now = when
        elif not self._ready and not self._scheduled and not self._stopping:
            raise RuntimeError(
                "virtual-time deadlock: every task is waiting and no timer "
                "is scheduled to wake any of them"
            )
        super()._run_once()


class DeliveryQueue:
    """Bounded per-peer work queue — the admission-control primitive.

    Wraps :class:`asyncio.Queue` to count backpressure stalls (puts that
    found the queue full and had to wait) and the deepest backlog seen.
    """

    def __init__(self, peer: str, depth: int) -> None:
        self.peer = peer
        self.depth = depth
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=depth)
        self.stalls = 0
        self.max_depth_seen = 0

    async def put(self, item) -> None:
        if self._queue.full():
            self.stalls += 1
        await self._queue.put(item)
        backlog = self._queue.qsize()
        if backlog > self.max_depth_seen:
            self.max_depth_seen = backlog

    async def get(self):
        return await self._queue.get()

    def task_done(self) -> None:
        self._queue.task_done()

    async def join(self) -> None:
        await self._queue.join()


class AsyncSyncRuntime:
    """One ``async_synchronize`` run: rounds of compute plus overlapped I/O.

    Each round performs the canonical publish/gossip/reconcile compute
    exactly as the serial loop would, spawning a transfer task for every
    message the serial loop would have transmitted sequentially.  Transfer
    tasks share the worker semaphore and deliver through the receiving
    peer's bounded queue; the round completes when every transfer it
    spawned has drained.
    """

    def __init__(self, cdss, names: Sequence[str], workers: int, queue_depth: int) -> None:
        self._cdss = cdss
        self._names = list(names)
        self.workers = workers
        self.queue_depth = queue_depth
        self._semaphore = asyncio.Semaphore(workers)
        self._queues = {name: DeliveryQueue(name, queue_depth) for name in self._names}
        self._in_flight = 0
        self.max_in_flight = 0
        self.transfers = 0
        self.virtual_seconds = 0.0

    # -- transfers ------------------------------------------------------------
    async def _transfer(self, sender: str, receiver: str, kind: str, size: int) -> None:
        """One admission-controlled transfer, awaited in virtual time."""
        async with self._semaphore:
            self._in_flight += 1
            if self._in_flight > self.max_in_flight:
                self.max_in_flight = self._in_flight
            self.transfers += 1
            try:
                delay = self._cdss.network.transmit(
                    sender, receiver, kind, size, advance=False
                )
                if delay:
                    await asyncio.sleep(delay)
            finally:
                self._in_flight -= 1

    async def _consume(self, queue: DeliveryQueue) -> None:
        """Drain one peer's delivery queue for the lifetime of the run."""
        while True:
            sender, kind, size = await queue.get()
            try:
                await self._transfer(sender, queue.peer, kind, size)
            finally:
                queue.task_done()

    async def _publish_transfer(self, outcome) -> None:
        """Uplink one peer's publication, then fan out to shard replicas.

        The fan-out deliveries ride each replica host's bounded queue, so a
        flooded host slows the fan-out (backpressure) instead of buffering
        without limit — and they overlap with the reconcile downlinks
        spawned later in the same round.
        """
        size = TXN_WIRE_BYTES * len(outcome.published)
        await self._transfer(outcome.peer, "archive", "publish-uplink", size)
        store = self._cdss.store
        shard_of_epoch = getattr(store, "shard_of_epoch", None)
        replica_hosts = getattr(store, "replica_hosts", None)
        if shard_of_epoch is None or replica_hosts is None:
            return
        for host in replica_hosts(shard_of_epoch(outcome.epoch)):
            if host != outcome.peer and host in self._queues:
                await self._queues[host].put(("archive", "replica-fanout", size))

    async def _reconcile_transfer(self, outcome) -> None:
        """Queue one peer's reconcile downlink through its delivery queue."""
        size = TXN_WIRE_BYTES * outcome.candidates_considered
        await self._queues[outcome.peer].put(("archive", "entries-downlink", size))

    # -- rounds ---------------------------------------------------------------
    async def _run_round(self, index: int) -> SyncRound:
        cdss = self._cdss
        simulate_traffic = cdss.network.latency is not None
        round_ = SyncRound(index=index)
        transfers: list[asyncio.Task] = []

        # Publish compute runs in canonical order (epochs come from the
        # shared clock); each non-empty publication immediately spawns its
        # uplink/fan-out transfer, which overlaps everything that follows.
        publish = cdss.publish_all(self._names)
        round_.published = publish.outcomes
        round_.skipped_offline = publish.skipped_offline
        if simulate_traffic:
            transfers.extend(
                asyncio.ensure_future(self._publish_transfer(outcome))
                for outcome in publish.outcomes
                if outcome.published
            )

        gossip = getattr(cdss, "gossip", None)
        if gossip is not None and round_.published_transactions > 0:
            # Same skip as the serial loop: with nothing published there is
            # nothing to spread, and reconcile's catch-up covers stragglers.
            gossip.run_until_converged()

        for name in self._names:
            if name not in publish.skipped_offline:
                outcome = cdss.reconcile(name)
                round_.reconciled.append(outcome)
                if simulate_traffic and outcome.candidates_considered:
                    transfers.append(
                        asyncio.ensure_future(self._reconcile_transfer(outcome))
                    )

        if transfers:
            await asyncio.gather(*transfers)
        # Producers are done; wait for every queued delivery to drain so the
        # round's virtual duration covers its whole pipeline.
        await asyncio.gather(*(queue.join() for queue in self._queues.values()))
        return round_

    async def run(self, max_rounds: int) -> tuple[SyncReport, bool]:
        """Run rounds until quiescence; returns (report, converged)."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        report = SyncReport(peers=list(self._names))
        consumers = [
            asyncio.ensure_future(self._consume(queue))
            for queue in self._queues.values()
        ]
        try:
            for index in range(1, max_rounds + 1):
                round_ = await self._run_round(index)
                report.rounds.append(round_)
                if round_.is_quiescent():
                    report.converged = True
                    break
        finally:
            self.virtual_seconds = loop.time() - started
            for consumer in consumers:
                consumer.cancel()
            await asyncio.gather(*consumers, return_exceptions=True)
        return report, report.converged

    def accounting(self) -> dict:
        return {
            "mode": "async",
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "virtual_seconds": self.virtual_seconds,
            "transfers": self.transfers,
            "max_in_flight": self.max_in_flight,
            "backpressure_stalls": sum(q.stalls for q in self._queues.values()),
            "max_queue_depth_seen": max(
                (q.max_depth_seen for q in self._queues.values()), default=0
            ),
        }

    def flush_metrics(self) -> None:
        """Mirror the run's scheduler accounting into the metrics registry.

        The ``sync.runtime.*`` series carries exactly the numbers
        :meth:`accounting` reports (parity is asserted in the tests), so
        :class:`~repro.api.sync.SyncReport.runtime` stays a thin view.
        """
        obs = getattr(self._cdss, "obs", None)
        if obs is None:
            return
        metrics = obs.metrics
        accounting = self.accounting()
        if accounting["transfers"]:
            metrics.counter_add("sync.runtime.transfers", accounting["transfers"])
        if accounting["backpressure_stalls"]:
            metrics.counter_add(
                "sync.runtime.backpressure_stalls", accounting["backpressure_stalls"]
            )
        metrics.gauge_max("sync.runtime.max_in_flight", accounting["max_in_flight"])
        metrics.gauge_max(
            "sync.runtime.max_queue_depth", accounting["max_queue_depth_seen"]
        )
        metrics.gauge_set("sync.runtime.virtual_seconds", accounting["virtual_seconds"])


def async_synchronize(
    cdss,
    peers: Optional[Sequence[str]] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    workers: Optional[int] = None,
    queue_depth: Optional[int] = None,
) -> SyncReport:
    """Publish and reconcile until quiescence on the async runtime.

    Drop-in replacement for :func:`repro.api.sync.synchronize` — same
    arguments, same report contents, same :class:`SyncError` (with the
    partial report attached) on a blown round budget — plus scheduler
    accounting in ``report.runtime``.  ``workers`` and ``queue_depth``
    default to the system's :class:`~repro.config.StoreConfig`.

    The network's virtual clock advances by the run's *overlapped* virtual
    duration, not the serial sum of per-message delays.
    """
    names = _selected_peers(cdss, peers)
    store_config = cdss.config.store
    if workers is None:
        workers = store_config.sync_workers
    if queue_depth is None:
        queue_depth = store_config.sync_queue_depth
    if workers < 1:
        raise SyncError(f"the async runtime needs workers >= 1, got {workers}")
    if queue_depth < 1:
        raise SyncError(f"the async runtime needs queue_depth >= 1, got {queue_depth}")

    gossip = getattr(cdss, "gossip", None)
    gossip_before = gossip.stats.snapshot() if gossip is not None else None
    gossip_rounds_before = gossip.rounds_run if gossip is not None else 0
    metrics_before = cdss.obs.metrics.snapshot()

    loop = VirtualTimeEventLoop()
    runtime = AsyncSyncRuntime(cdss, names, workers, queue_depth)
    try:
        report, converged = loop.run_until_complete(runtime.run(max_rounds))
    finally:
        loop.close()

    cdss.network.clock.advance(runtime.virtual_seconds)
    runtime.flush_metrics()
    finalize_report(cdss, report, gossip_before, gossip_rounds_before, metrics_before)
    report.runtime = runtime.accounting()
    if not converged:
        raise SyncError(
            f"synchronization did not reach quiescence within {max_rounds} rounds",
            report=report,
        )
    return report
