"""The declarative network specification language.

A CDSS network — peers, relations with keys, trust policies, and tgd
mappings — can be described as text, mirroring the datalog notation the
paper itself uses::

    # The two-peer quickstart network.
    network quickstart
    peer Source
      relation R(key, value) key(key)
    peer Target
      relation R(key, value) key(key)
    mapping [M_ST] @Target.R(k, v) :- @Source.R(k, v).

The format is line-oriented:

* ``network <name>`` (optional) names the network;
* ``store <kind> [<knob> <value> ...]`` (optional) selects the update-store
  backend: ``store centralized`` or ``store distributed shards 4
  replication 2 write_quorum 2 read_quorum 1 segment_size 8`` (every knob
  optional);
* ``sync <mode> [<knob> <value> ...]`` (optional) selects how reconnecting
  peers catch up: ``sync cursor`` (the default scalar-cursor replay) or
  ``sync gossip fanout 2 sketch iblt capacity 32 growth 4 attempts 3``
  (epidemic anti-entropy over sketch reconciliation; every knob optional);
* ``execution <backend>`` (optional) selects how compiled mapping rules are
  fired: ``execution python`` (the tuple-at-a-time closure executor, the
  default) or ``execution sql`` (set-at-a-time ``INSERT ... SELECT``
  pushdown into an in-memory SQLite mirror);
* ``observe <mode> [<mode> ...]`` (optional) turns on the observability
  layer: ``observe metrics`` populates the shared metrics registry and the
  per-sync ``report.metrics`` deltas, ``observe trace`` (or ``observe trace
  metrics`` — trace implies metrics) additionally installs the span tracer
  for Chrome-trace export;
* ``peer <Name> [schema <SchemaName>]`` opens a peer section;
* ``relation Rel(attr, ...) [key(attr, ...)]`` declares a relation of the
  current peer; without a ``key`` clause the whole tuple is the key;
* ``trust <Peer> <priority>`` and ``trust * <priority>`` populate the
  peer's trust table (``*`` sets the default priority; 0 means distrust);
* ``mapping [Id] @Target.R(...) :- @Source.R(...), ... .`` declares a tgd
  mapping, target side first, continuing across lines until the closing
  period.  Split mappings list several head atoms; variables occurring only
  in the heads are existential and become labelled nulls;
* ``#`` or ``%`` start a comment.

:func:`parse_network_spec` turns text (or an equivalent dict) into a
:class:`NetworkSpec`; :meth:`NetworkSpec.to_text` renders it back so that
spec → CDSS → spec round-trips.  ``CDSS.from_spec`` builds a running system
from either form.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping as MappingType, Optional, Sequence, Union

from ..analysis import codes as _codes
from ..core.mapping import Mapping, mapping_from_tgd, mapping_to_tgd
from ..core.schema import PeerSchema
from ..core.trust import TrustPolicy
from ..errors import SourceSpan, SpecError

#: The trust-table key that sets a peer's default priority.
TRUST_DEFAULT = "*"

_PEER_RE = re.compile(r"peer\s+(?P<name>\w+)(?:\s+schema\s+(?P<schema>\w+))?\s*$")
_STORE_RE = re.compile(r"store\s+(?P<kind>\w+)(?P<knobs>(?:\s+\w+\s+\d+)*)\s*$")
# Unlike store knobs, sync knobs take word values too ("sketch iblt").
_SYNC_RE = re.compile(r"sync\s+(?P<mode>\w+)(?P<knobs>(?:\s+\w+\s+\w+)*)\s*$")
_RELATION_RE = re.compile(
    r"relation\s+(?P<name>\w+)\s*\((?P<attrs>[^)]*)\)(?:\s*key\s*\((?P<key>[^)]*)\))?\s*$"
)
_TRUST_RE = re.compile(r"trust\s+(?P<peer>\*|\w+)\s+(?P<priority>\d+)\s*$")
_EXECUTION_RE = re.compile(r"execution\s+(?P<backend>\w+)\s*$")
_OBSERVE_RE = re.compile(r"observe(?P<tokens>(?:\s+\w+)+)\s*$")

#: Backends an ``execution`` declaration accepts.
_EXECUTION_BACKENDS = ("python", "sql")

#: Modes an ``observe`` declaration accepts (matching
#: :attr:`~repro.config.StoreConfig.observability`).
_OBSERVE_MODES = ("off", "metrics", "trace")


def _observe_from_tokens(tokens: Sequence[str], context: str) -> str:
    """Collapse ``observe`` tokens to one effective mode (trace > metrics)."""
    unknown = [token for token in tokens if token not in _OBSERVE_MODES]
    if unknown:
        raise SpecError(
            f"{context}: observe mode must be one of {', '.join(_OBSERVE_MODES)}; "
            f"got {unknown[0]!r}"
        )
    if "off" in tokens and len(set(tokens)) > 1:
        raise SpecError(f"{context}: 'observe off' cannot be combined with other modes")
    if "trace" in tokens:
        return "trace"
    if "metrics" in tokens:
        return "metrics"
    return "off"


@dataclass
class PeerSpec:
    """Declarative description of one peer: schema shape plus trust table."""

    name: str
    schema_name: Optional[str] = None
    relations: dict[str, list[str]] = field(default_factory=dict)
    keys: dict[str, list[str]] = field(default_factory=dict)
    #: ``{peer: priority}`` plus the optional ``"*"`` default entry.
    trust: dict[str, int] = field(default_factory=dict)
    #: Source locations of the peer's declarations, when parsed from text:
    #: ``"peer"``, ``"relation:<name>"``, ``"key:<name>"``, ``"trust:<peer>"``.
    spans: dict[str, SourceSpan] = field(
        default_factory=dict, compare=False, repr=False
    )

    def span_of(self, key: str) -> Optional[SourceSpan]:
        """The recorded span for a declaration key, or the peer's own span."""
        return self.spans.get(key) or self.spans.get("peer")

    def schema(self) -> PeerSchema:
        if not self.relations:
            raise SpecError(f"peer {self.name!r} declares no relations")
        return PeerSchema.build(
            self.schema_name or self.name, self.relations, self.keys
        )

    def trust_policy(self) -> TrustPolicy:
        table = {peer: priority for peer, priority in self.trust.items() if peer != TRUST_DEFAULT}
        default = self.trust.get(TRUST_DEFAULT, 1)
        return TrustPolicy(
            owner=self.name, peer_priorities=table, default_priority=default
        )

    def to_dict(self) -> dict:
        spec: dict = {"relations": {name: list(attrs) for name, attrs in self.relations.items()}}
        if self.schema_name:
            spec["schema"] = self.schema_name
        if self.keys:
            spec["keys"] = {name: list(attrs) for name, attrs in self.keys.items()}
        if self.trust:
            spec["trust"] = dict(self.trust)
        return spec


#: Knobs a ``store`` declaration accepts, in canonical rendering order.
_STORE_KNOBS = ("shards", "replication", "write_quorum", "read_quorum", "segment_size")


@dataclass
class StoreSpec:
    """Declarative description of the shared update-store backend.

    Unset knobs (``None``) defer to :class:`~repro.config.StoreConfig`
    defaults, so a spec only pins what it cares about.
    """

    kind: str = "centralized"
    shards: Optional[int] = None
    replication: Optional[int] = None
    write_quorum: Optional[int] = None
    read_quorum: Optional[int] = None
    segment_size: Optional[int] = None

    def validate(self) -> None:
        if self.kind not in ("centralized", "distributed"):
            raise SpecError(
                f"store kind must be 'centralized' or 'distributed', got {self.kind!r}"
            )
        for knob in _STORE_KNOBS:
            value = getattr(self, knob)
            if value is not None and value < 1:
                raise SpecError(f"store {knob} must be >= 1, got {value}")
        # Quorums are only cross-checked against a replication factor the
        # spec itself pins; when the knob is unset the effective factor comes
        # from the StoreConfig the spec is merged over, which re-validates.
        if self.replication is not None:
            for knob in ("write_quorum", "read_quorum"):
                value = getattr(self, knob)
                if value is not None and value > self.replication:
                    raise SpecError(
                        f"store {knob} ({value}) cannot exceed the replication "
                        f"factor ({self.replication})"
                    )

    def to_dict(self) -> dict:
        spec: dict = {"kind": self.kind}
        for knob in _STORE_KNOBS:
            value = getattr(self, knob)
            if value is not None:
                spec[knob] = value
        return spec

    def to_text_line(self) -> str:
        parts = [f"store {self.kind}"]
        for knob in _STORE_KNOBS:
            value = getattr(self, knob)
            if value is not None:
                parts.append(f"{knob} {value}")
        return " ".join(parts)


#: Knobs a ``sync`` declaration accepts, in canonical rendering order.
#: ``sketch`` and ``runtime`` take word values; the rest take ints.
_SYNC_KNOBS = ("fanout", "sketch", "capacity", "growth", "attempts", "runtime", "workers")
_SYNC_WORD_KNOBS = frozenset({"sketch", "runtime"})
#: Knobs meaningful only in gossip mode (``sync cursor`` rejects them).
_SYNC_GOSSIP_KNOBS = ("fanout", "sketch", "capacity", "growth", "attempts")


@dataclass
class SyncSpec:
    """Declarative description of the peer catch-up strategy and runtime.

    ``sync cursor`` is the default scalar-cursor replay; ``sync gossip``
    enables epidemic sketch reconciliation with its own knobs.  Both modes
    additionally accept ``runtime serial|async`` and ``workers N`` to select
    the sync scheduler (``sync cursor runtime async workers 8``).  Unset
    knobs (``None``) defer to :class:`~repro.config.StoreConfig` defaults.
    """

    mode: str = "cursor"
    fanout: Optional[int] = None
    sketch: Optional[str] = None
    capacity: Optional[int] = None
    growth: Optional[int] = None
    attempts: Optional[int] = None
    runtime: Optional[str] = None
    workers: Optional[int] = None

    def validate(self) -> None:
        if self.mode not in ("cursor", "gossip"):
            raise SpecError(
                f"sync mode must be 'cursor' or 'gossip', got {self.mode!r}"
            )
        if self.runtime is not None and self.runtime not in ("serial", "async"):
            raise SpecError(
                f"sync runtime must be 'serial' or 'async', got {self.runtime!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise SpecError(f"sync workers must be >= 1, got {self.workers}")
        if self.mode == "cursor":
            for knob in _SYNC_GOSSIP_KNOBS:
                if getattr(self, knob) is not None:
                    raise SpecError(
                        f"sync cursor takes no gossip knobs, but {knob!r} is given"
                    )
            return
        if self.sketch is not None and self.sketch not in ("iblt", "bloom"):
            raise SpecError(
                f"sync sketch must be 'iblt' or 'bloom', got {self.sketch!r}"
            )
        for knob, floor in (("fanout", 1), ("capacity", 1), ("growth", 2), ("attempts", 1)):
            value = getattr(self, knob)
            if value is not None and value < floor:
                raise SpecError(f"sync {knob} must be >= {floor}, got {value}")

    def to_dict(self) -> dict:
        spec: dict = {"mode": self.mode}
        for knob in _SYNC_KNOBS:
            value = getattr(self, knob)
            if value is not None:
                spec[knob] = value
        return spec

    def to_text_line(self) -> str:
        parts = [f"sync {self.mode}"]
        for knob in _SYNC_KNOBS:
            value = getattr(self, knob)
            if value is not None:
                parts.append(f"{knob} {value}")
        return " ".join(parts)


@dataclass
class NetworkSpec:
    """A complete declarative description of a CDSS network."""

    name: str = "network"
    peers: dict[str, PeerSpec] = field(default_factory=dict)
    mappings: list[Mapping] = field(default_factory=list)
    #: Optional update-store backend selection (centralized vs distributed).
    store: Optional[StoreSpec] = None
    #: Optional peer catch-up strategy (cursor replay vs sketch gossip).
    sync: Optional[SyncSpec] = None
    #: Optional rule execution backend ("python" closure executor vs "sql"
    #: pushdown); ``None`` defers to :class:`~repro.config.ExchangeConfig`.
    execution: Optional[str] = None
    #: Optional observability mode ("metrics" or "trace"); ``None`` defers
    #: to :class:`~repro.config.StoreConfig` (off by default).
    observe: Optional[str] = None
    #: Source locations of top-level declarations, when parsed from text:
    #: ``"network"``, ``"store"``, ``"sync"``, ``"execution"``, ``"observe"``.
    spans: dict[str, SourceSpan] = field(
        default_factory=dict, compare=False, repr=False
    )

    # -- validation ----------------------------------------------------------
    def validate(self) -> None:
        """Cross-check the spec before any system state is built.

        Raised :class:`~repro.errors.SpecError`\\ s carry the same ``CDSS0xx``
        codes and spans that ``python -m repro.lint`` reports, so build-time
        and lint-time messages agree.
        """
        if not self.peers:
            raise SpecError(
                "a network spec needs at least one peer", code=_codes.MALFORMED_SPEC
            )
        if self.store is not None:
            self._validate_section(self.store, "store")
        if self.sync is not None:
            self._validate_section(self.sync, "sync")
        if self.execution is not None and self.execution not in _EXECUTION_BACKENDS:
            raise SpecError(
                f"execution backend must be 'python' or 'sql', got {self.execution!r}",
                code=_codes.MALFORMED_SPEC,
                span=self.spans.get("execution"),
            )
        if self.observe is not None and self.observe not in _OBSERVE_MODES:
            raise SpecError(
                f"observe mode must be one of {', '.join(_OBSERVE_MODES)}, "
                f"got {self.observe!r}",
                code=_codes.MALFORMED_SPEC,
                span=self.spans.get("observe"),
            )
        for peer in self.peers.values():
            if not peer.relations:
                raise SpecError(
                    f"peer {peer.name!r} declares no relations",
                    code=_codes.MALFORMED_SPEC,
                    span=peer.span_of("peer"),
                )
            for relation, key in peer.keys.items():
                if relation not in peer.relations:
                    raise SpecError(
                        f"peer {peer.name!r} declares a key for unknown relation {relation!r}",
                        code=_codes.UNKNOWN_RELATION,
                        span=peer.span_of(f"key:{relation}"),
                    )
            for trusted in peer.trust:
                if trusted != TRUST_DEFAULT and trusted not in self.peers:
                    raise SpecError(
                        f"peer {peer.name!r} declares trust in unknown peer {trusted!r}",
                        code=_codes.UNKNOWN_PEER,
                        span=peer.span_of(f"trust:{trusted}"),
                    )
        seen_ids: set[str] = set()
        for mapping in self.mappings:
            if mapping.mapping_id in seen_ids:
                raise SpecError(
                    f"duplicate mapping id {mapping.mapping_id!r}",
                    code=_codes.DUPLICATE_MAPPING,
                    span=mapping.span,
                )
            seen_ids.add(mapping.mapping_id)
            for role, peer_name in (
                ("source", mapping.source_peer),
                ("target", mapping.target_peer),
            ):
                if peer_name not in self.peers:
                    raise SpecError(
                        f"mapping {mapping.mapping_id!r} references unknown "
                        f"{role} peer {peer_name!r}",
                        code=_codes.UNKNOWN_PEER,
                        span=mapping.span,
                    )
            mapping.validate_against(
                self.peers[mapping.source_peer].schema(),
                self.peers[mapping.target_peer].schema(),
            )

    def _validate_section(self, section, key: str) -> None:
        """Run a section's own validation, tagging errors with code + span."""
        try:
            section.validate()
        except SpecError as error:
            if error.code is None:
                error.code = _codes.MALFORMED_SPEC
            if error.span is None:
                error.span = self.spans.get(key)
            raise

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "peers": {name: peer.to_dict() for name, peer in self.peers.items()},
            "mappings": [mapping_to_tgd(mapping) for mapping in self.mappings],
        }
        if self.store is not None:
            data["store"] = self.store.to_dict()
        if self.sync is not None:
            data["sync"] = self.sync.to_dict()
        if self.execution is not None:
            data["execution"] = self.execution
        if self.observe is not None:
            data["observe"] = self.observe
        return data

    def to_text(self) -> str:
        lines = [f"network {self.name}"]
        if self.store is not None:
            lines.append(self.store.to_text_line())
        if self.sync is not None:
            lines.append(self.sync.to_text_line())
        if self.execution is not None:
            lines.append(f"execution {self.execution}")
        if self.observe is not None:
            lines.append(f"observe {self.observe}")
        for peer in self.peers.values():
            header = f"peer {peer.name}"
            if peer.schema_name:
                header += f" schema {peer.schema_name}"
            lines.append(header)
            for relation, attributes in peer.relations.items():
                line = f"  relation {relation}({', '.join(attributes)})"
                key = peer.keys.get(relation)
                if key:
                    line += f" key({', '.join(key)})"
                lines.append(line)
            for trusted, priority in peer.trust.items():
                lines.append(f"  trust {trusted} {priority}")
        for mapping in self.mappings:
            lines.append(f"mapping {mapping_to_tgd(mapping)}")
        return "\n".join(lines) + "\n"


SpecInput = Union[str, MappingType, NetworkSpec]


def _strip_comment(line: str) -> str:
    # Quote-aware: '#'/'%' inside a quoted constant is content, not a comment.
    in_string: Optional[str] = None
    for index, char in enumerate(line):
        if in_string:
            if char == in_string:
                in_string = None
        elif char in "'\"":
            in_string = char
        elif char in "#%":
            return line[:index].rstrip()
    return line.rstrip()


def _parse_text_spec(text: str) -> NetworkSpec:
    spec = NetworkSpec()
    current: Optional[PeerSpec] = None
    pending_mapping: list[str] = []
    pending_start = 0

    def line_span(number: int, raw: str) -> SourceSpan:
        indent = len(raw) - len(raw.lstrip())
        return SourceSpan(number, indent + 1)

    def finish_mapping() -> None:
        if pending_mapping:
            raise SpecError(
                "mapping statement is missing its closing period: "
                + " ".join(part.strip() for part in pending_mapping),
                code=_codes.MALFORMED_SPEC,
                span=SourceSpan(pending_start, 1),
            )

    for number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            if pending_mapping:
                pending_mapping.append("")
            continue

        if pending_mapping:
            # Keep the raw (comment-stripped, indentation-preserving) line so
            # spans inside multi-line mappings keep exact columns.
            pending_mapping.append(_strip_comment(raw))
            if line.endswith("."):
                spec.mappings.append(
                    _mapping_from_lines(
                        pending_mapping, f"line {pending_start}", pending_start
                    )
                )
                pending_mapping = []
            continue

        if line.startswith("network "):
            spec.name = line.split(None, 1)[1].strip()
            spec.spans["network"] = line_span(number, raw)
            continue

        if line.startswith("store"):
            if current is not None:
                raise SpecError(
                    f"line {number}: the store declaration belongs at the top "
                    "of the spec, before any peer section"
                )
            if spec.store is not None:
                raise SpecError(f"line {number}: the store is declared twice")
            match = _STORE_RE.match(line)
            if match is None:
                raise SpecError(f"line {number}: malformed store declaration {raw.strip()!r}")
            spec.store = _store_from_knobs(
                match.group("kind"), match.group("knobs").split(), f"line {number}"
            )
            spec.spans["store"] = line_span(number, raw)
            continue

        if line.startswith("sync"):
            if current is not None:
                raise SpecError(
                    f"line {number}: the sync declaration belongs at the top "
                    "of the spec, before any peer section"
                )
            if spec.sync is not None:
                raise SpecError(f"line {number}: the sync mode is declared twice")
            match = _SYNC_RE.match(line)
            if match is None:
                raise SpecError(f"line {number}: malformed sync declaration {raw.strip()!r}")
            spec.sync = _sync_from_knobs(
                match.group("mode"), match.group("knobs").split(), f"line {number}"
            )
            spec.spans["sync"] = line_span(number, raw)
            continue

        if line.startswith("execution"):
            if current is not None:
                raise SpecError(
                    f"line {number}: the execution declaration belongs at the "
                    "top of the spec, before any peer section"
                )
            if spec.execution is not None:
                raise SpecError(f"line {number}: the execution backend is declared twice")
            match = _EXECUTION_RE.match(line)
            if match is None:
                raise SpecError(
                    f"line {number}: malformed execution declaration {raw.strip()!r}"
                )
            spec.execution = match.group("backend")
            spec.spans["execution"] = line_span(number, raw)
            continue

        if line.startswith("observe"):
            if current is not None:
                raise SpecError(
                    f"line {number}: the observe declaration belongs at the "
                    "top of the spec, before any peer section"
                )
            if spec.observe is not None:
                raise SpecError(f"line {number}: the observe mode is declared twice")
            match = _OBSERVE_RE.match(line)
            if match is None:
                raise SpecError(
                    f"line {number}: malformed observe declaration {raw.strip()!r}"
                )
            spec.observe = _observe_from_tokens(
                match.group("tokens").split(), f"line {number}"
            )
            if spec.observe == "off":
                spec.observe = None  # "observe off" is the absent default.
            spec.spans["observe"] = line_span(number, raw)
            continue

        if line.startswith("peer"):
            match = _PEER_RE.match(line)
            if match is None:
                raise SpecError(f"line {number}: malformed peer declaration {raw.strip()!r}")
            name = match.group("name")
            if name in spec.peers:
                raise SpecError(f"line {number}: peer {name!r} is declared twice")
            current = PeerSpec(name=name, schema_name=match.group("schema"))
            current.spans["peer"] = line_span(number, raw)
            spec.peers[name] = current
            continue

        if line.startswith("relation"):
            if current is None:
                raise SpecError(f"line {number}: relation declared outside a peer section")
            match = _RELATION_RE.match(line)
            if match is None:
                raise SpecError(f"line {number}: malformed relation declaration {raw.strip()!r}")
            relation = match.group("name")
            if relation in current.relations:
                raise SpecError(
                    f"line {number}: relation {relation!r} of peer "
                    f"{current.name!r} is declared twice"
                )
            attributes = [attr.strip() for attr in match.group("attrs").split(",") if attr.strip()]
            current.relations[relation] = attributes
            current.spans[f"relation:{relation}"] = line_span(number, raw)
            key_text = match.group("key")
            if key_text is not None:
                current.keys[relation] = [
                    attr.strip() for attr in key_text.split(",") if attr.strip()
                ]
                current.spans[f"key:{relation}"] = line_span(number, raw)
            continue

        if line.startswith("trust"):
            if current is None:
                raise SpecError(f"line {number}: trust declared outside a peer section")
            match = _TRUST_RE.match(line)
            if match is None:
                raise SpecError(f"line {number}: malformed trust declaration {raw.strip()!r}")
            current.trust[match.group("peer")] = int(match.group("priority"))
            current.spans[f"trust:{match.group('peer')}"] = line_span(number, raw)
            continue

        if line.startswith("mapping"):
            # Blank out the "mapping" keyword (and anything before it) so the
            # remaining text keeps the raw line's exact columns for spans.
            stripped = _strip_comment(raw)
            keyword_end = stripped.find("mapping") + len("mapping")
            masked = " " * keyword_end + stripped[keyword_end:]
            if line.endswith("."):
                spec.mappings.append(_mapping_from_lines([masked], f"line {number}", number))
            else:
                pending_mapping = [masked]
                pending_start = number
            continue

        raise SpecError(
            f"line {number}: unrecognised spec statement {raw.strip()!r}",
            code=_codes.MALFORMED_SPEC,
            span=line_span(number, raw),
        )

    finish_mapping()
    return spec


def _mapping_from_lines(
    lines: Sequence[str], context: str, origin_line: int = 1
) -> Mapping:
    text = "\n".join(lines)
    try:
        return mapping_from_tgd(text, origin_line=origin_line)
    except SpecError:
        raise
    except Exception as error:  # parse/mapping errors become spec errors with context
        flat = " ".join(part.strip() for part in lines if part.strip())
        raise SpecError(
            f"{context}: bad mapping {flat!r}: {error}",
            code=getattr(error, "code", None) or _codes.MALFORMED_SPEC,
            span=getattr(error, "span", None) or SourceSpan(origin_line, 1),
        ) from error


def _store_from_knobs(kind: str, tokens: Sequence[str], context: str) -> StoreSpec:
    """Build a :class:`StoreSpec` from ``knob value`` token pairs."""
    store = StoreSpec(kind=kind)
    for position in range(0, len(tokens), 2):
        knob = tokens[position]
        if knob not in _STORE_KNOBS:
            raise SpecError(
                f"{context}: unknown store knob {knob!r}; expected one of "
                + ", ".join(_STORE_KNOBS)
            )
        if getattr(store, knob) is not None:
            raise SpecError(f"{context}: store knob {knob!r} is given twice")
        setattr(store, knob, int(tokens[position + 1]))
    return store


def _sync_from_knobs(mode: str, tokens: Sequence[str], context: str) -> SyncSpec:
    """Build a :class:`SyncSpec` from ``knob value`` token pairs."""
    sync = SyncSpec(mode=mode)
    for position in range(0, len(tokens), 2):
        knob = tokens[position]
        if knob not in _SYNC_KNOBS:
            raise SpecError(
                f"{context}: unknown sync knob {knob!r}; expected one of "
                + ", ".join(_SYNC_KNOBS)
            )
        if getattr(sync, knob) is not None:
            raise SpecError(f"{context}: sync knob {knob!r} is given twice")
        value = tokens[position + 1]
        if knob in _SYNC_WORD_KNOBS:
            setattr(sync, knob, value)
        else:
            try:
                setattr(sync, knob, int(value))
            except ValueError:
                raise SpecError(
                    f"{context}: sync knob {knob!r} needs an integer, got {value!r}"
                ) from None
    return sync


def _parse_dict_spec(data: MappingType) -> NetworkSpec:
    spec = NetworkSpec(name=str(data.get("name", "network")))
    store_entry = data.get("store")
    if store_entry is not None:
        if not isinstance(store_entry, MappingType):
            raise SpecError(
                f"the 'store' entry must be a mapping, got {type(store_entry).__name__}"
            )
        unknown = set(store_entry) - {"kind", *_STORE_KNOBS}
        if unknown:
            raise SpecError(f"unknown store entries: {sorted(unknown)}")
        spec.store = StoreSpec(
            kind=str(store_entry.get("kind", "centralized")),
            **{
                knob: int(store_entry[knob])
                for knob in _STORE_KNOBS
                if store_entry.get(knob) is not None
            },
        )
    sync_entry = data.get("sync")
    if sync_entry is not None:
        if not isinstance(sync_entry, MappingType):
            raise SpecError(
                f"the 'sync' entry must be a mapping, got {type(sync_entry).__name__}"
            )
        unknown = set(sync_entry) - {"mode", *_SYNC_KNOBS}
        if unknown:
            raise SpecError(f"unknown sync entries: {sorted(unknown)}")
        spec.sync = SyncSpec(
            mode=str(sync_entry.get("mode", "cursor")),
            **{
                knob: (
                    str(sync_entry[knob])
                    if knob in _SYNC_WORD_KNOBS
                    else int(sync_entry[knob])
                )
                for knob in _SYNC_KNOBS
                if sync_entry.get(knob) is not None
            },
        )
    execution_entry = data.get("execution")
    if execution_entry is not None:
        spec.execution = str(execution_entry)
    observe_entry = data.get("observe")
    if observe_entry is not None:
        tokens = (
            [str(token) for token in observe_entry]
            if isinstance(observe_entry, (list, tuple))
            else str(observe_entry).split()
        )
        mode = _observe_from_tokens(tokens, "the 'observe' entry")
        spec.observe = mode if mode != "off" else None
    peers = data.get("peers")
    if not isinstance(peers, MappingType) or not peers:
        raise SpecError("dict specs need a non-empty 'peers' mapping")
    for name, entry in peers.items():
        entry = entry or {}
        if not isinstance(entry, MappingType):
            raise SpecError(f"peer {name!r} entry must be a mapping, got {type(entry).__name__}")
        relations = entry.get("relations", {})
        spec.peers[name] = PeerSpec(
            name=name,
            schema_name=entry.get("schema"),
            relations={rel: list(attrs) for rel, attrs in relations.items()},
            keys={rel: list(attrs) for rel, attrs in entry.get("keys", {}).items()},
            trust={peer: int(p) for peer, p in entry.get("trust", {}).items()},
        )
    for index, entry in enumerate(data.get("mappings", [])):
        if isinstance(entry, Mapping):
            spec.mappings.append(entry)
        elif isinstance(entry, str):
            spec.mappings.append(_mapping_from_lines([entry], f"mappings[{index}]"))
        else:
            raise SpecError(
                f"mappings[{index}] must be a tgd string or Mapping, got {type(entry).__name__}"
            )
    return spec


def parse_network_spec(source: SpecInput, *, validate: bool = True) -> NetworkSpec:
    """Parse a textual or dict network description into a :class:`NetworkSpec`.

    The spec is validated (unknown peers, duplicate ids, arity mismatches)
    before being returned, so a spec that parses is guaranteed to build.
    The static analyzer passes ``validate=False`` so it can report *every*
    problem as a diagnostic instead of raising on the first.
    """
    if isinstance(source, NetworkSpec):
        spec = source
    elif isinstance(source, str):
        spec = _parse_text_spec(source)
    elif isinstance(source, MappingType):
        spec = _parse_dict_spec(source)
    else:
        raise SpecError(
            f"cannot parse a network spec from {type(source).__name__}; "
            "pass text, a dict, or a NetworkSpec"
        )
    if validate:
        spec.validate()
    return spec


def spec_of(cdss) -> NetworkSpec:
    """Extract the declarative spec of a running system (inverse of ``from_spec``).

    Only table-based trust policies (per-peer priorities plus a default) can
    be captured; policies carrying :class:`TrustCondition` predicates raise
    :class:`SpecError` because arbitrary Python predicates have no textual
    form.
    """
    spec = NetworkSpec(name=getattr(cdss, "name", None) or "network")
    spec.store = store_spec_of(cdss.store)
    spec.sync = sync_spec_of(cdss)
    spec.execution = execution_spec_of(cdss)
    spec.observe = observe_spec_of(cdss)
    for peer in cdss.catalog.peers():
        policy = peer.trust
        if policy.conditions:
            raise SpecError(
                f"peer {peer.name!r} uses trust conditions with Python predicates, "
                "which cannot be serialized to a network spec"
            )
        trust: dict[str, int] = dict(policy.peer_priorities)
        if policy.default_priority != 1:
            trust[TRUST_DEFAULT] = policy.default_priority
        spec.peers[peer.name] = PeerSpec(
            name=peer.name,
            schema_name=peer.schema.name,
            relations={
                relation.name: list(relation.attributes) for relation in peer.schema
            },
            keys={
                relation.name: list(relation.key)
                for relation in peer.schema
                if relation.key != relation.attributes
            },
            trust=trust,
        )
    spec.mappings = list(cdss.catalog.mappings())
    return spec


def execution_spec_of(cdss) -> Optional[str]:
    """The ``execution`` directive describing a running system's backend.

    The python default maps to ``None`` (no ``execution`` line), so specs
    that never mentioned a backend round-trip unchanged.
    """
    backend = cdss.config.exchange.execution_backend
    return backend if backend != "python" else None


def observe_spec_of(cdss) -> Optional[str]:
    """The ``observe`` directive describing a running system's observability.

    The off default maps to ``None`` (no ``observe`` line), so specs that
    never mentioned observability round-trip unchanged.
    """
    mode = cdss.config.store.observability
    return mode if mode != "off" else None


def store_spec_of(store) -> Optional[StoreSpec]:
    """The :class:`StoreSpec` describing a running store.

    The centralized default maps to ``None`` (no ``store`` line), so specs
    that never mentioned a store round-trip unchanged; a distributed store
    is recovered with all its knobs pinned.
    """
    from ..p2p.distributed import DistributedUpdateStore

    if isinstance(store, DistributedUpdateStore):
        return StoreSpec(
            kind="distributed",
            shards=store.shard_count,
            replication=store.replication_factor,
            write_quorum=store.write_quorum,
            read_quorum=store.read_quorum,
            segment_size=store.segment_size,
        )
    return None


def sync_spec_of(cdss) -> Optional[SyncSpec]:
    """The :class:`SyncSpec` describing a running system's catch-up mode.

    The all-default configuration (cursor mode, serial runtime) maps to
    ``None`` (no ``sync`` line), so specs that never mentioned sync
    round-trip unchanged; gossip mode is recovered with all its knobs
    pinned, and the async runtime pins ``runtime``/``workers`` in either
    mode.
    """
    store_config = cdss.config.store
    runtime = None
    workers = None
    if store_config.sync_runtime == "async":
        runtime = store_config.sync_runtime
        workers = store_config.sync_workers
    if store_config.sync_mode != "gossip":
        if runtime is None:
            return None
        return SyncSpec(mode="cursor", runtime=runtime, workers=workers)
    return SyncSpec(
        mode="gossip",
        fanout=store_config.gossip_fanout,
        sketch=store_config.sketch,
        capacity=store_config.sketch_capacity,
        growth=store_config.sketch_growth,
        attempts=store_config.sketch_attempts,
        runtime=runtime,
        workers=workers,
    )
