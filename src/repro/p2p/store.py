"""The shared archive of published transactions.

The update store is append-only and totally ordered by publication epoch.
Publishing archives a peer's transactions so they stay available to everyone
even when the publisher disconnects (demonstration Scenario 5); reconciling
peers ask the store for every transaction published after the epoch they last
reconciled at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.transactions import Transaction
from ..errors import PublicationError


@dataclass(frozen=True)
class PublishedTransaction:
    """One archived transaction together with its publication metadata."""

    transaction: Transaction
    epoch: int
    sequence: int
    publisher: str

    @property
    def txn_id(self) -> str:
        return self.transaction.txn_id


class UpdateStore:
    """Append-only, epoch-ordered archive of published transactions."""

    def __init__(self) -> None:
        self._entries: list[PublishedTransaction] = []
        self._by_id: dict[str, PublishedTransaction] = {}

    # -- publication ------------------------------------------------------------
    def archive(
        self, transactions: Iterable[Transaction], epoch: int, publisher: str
    ) -> list[PublishedTransaction]:
        """Archive a batch of transactions published at ``epoch``."""
        archived = []
        for transaction in transactions:
            if transaction.txn_id in self._by_id:
                raise PublicationError(
                    f"transaction {transaction.txn_id!r} was already published"
                )
            if transaction.peer != publisher:
                raise PublicationError(
                    f"peer {publisher!r} cannot publish transaction "
                    f"{transaction.txn_id!r} owned by {transaction.peer!r}"
                )
            stamped = transaction.with_epoch(epoch)
            entry = PublishedTransaction(
                transaction=stamped,
                epoch=epoch,
                sequence=len(self._entries),
                publisher=publisher,
            )
            self._entries.append(entry)
            self._by_id[transaction.txn_id] = entry
            archived.append(entry)
        return archived

    # -- retrieval ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def all_entries(self) -> list[PublishedTransaction]:
        return list(self._entries)

    def transactions(self) -> list[Transaction]:
        return [entry.transaction for entry in self._entries]

    def entry(self, txn_id: str) -> PublishedTransaction:
        try:
            return self._by_id[txn_id]
        except KeyError:
            raise PublicationError(f"transaction {txn_id!r} was never published") from None

    def contains(self, txn_id: str) -> bool:
        return txn_id in self._by_id

    def published_since(
        self, epoch: int, exclude_publisher: Optional[str] = None
    ) -> list[PublishedTransaction]:
        """Entries published strictly after ``epoch`` (optionally excluding a peer)."""
        return [
            entry
            for entry in self._entries
            if entry.epoch > epoch
            and (exclude_publisher is None or entry.publisher != exclude_publisher)
        ]

    def published_by(self, publisher: str) -> list[PublishedTransaction]:
        return [entry for entry in self._entries if entry.publisher == publisher]

    def latest_epoch(self) -> int:
        return self._entries[-1].epoch if self._entries else 0

    def antecedents_map(self) -> dict[str, frozenset[str]]:
        """``{txn_id: antecedents}`` for every archived transaction."""
        return {
            entry.txn_id: entry.transaction.antecedents for entry in self._entries
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UpdateStore({len(self._entries)} transactions, epoch {self.latest_epoch()})"
