"""The shared archive of published transactions.

The update store is append-only and totally ordered by publication epoch.
Publishing archives a peer's transactions so they stay available to everyone
even when the publisher disconnects (demonstration Scenario 5); reconciling
peers ask the store for every transaction published after the epoch they last
reconciled at.

Publication of a batch is atomic: the whole batch is validated (ownership,
duplicate ids, epoch monotonicity) before the first entry is appended, so a
:class:`~repro.errors.PublicationError` never leaves a partially archived
batch behind.  Retrieval is indexed — ``published_since`` bisects on the
epoch-ordered log instead of scanning it, and ``published_by`` answers from a
per-publisher index — because the reconcile hot path calls both once per
peer per epoch.

:class:`EpochLog` is the reusable epoch-ordered indexed log; the distributed
store (:mod:`repro.p2p.distributed`) hosts one per shard replica, so the
centralized archive and every peer-hosted shard server share one storage
idiom.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..core.transactions import Transaction
from ..errors import PublicationError


@dataclass(frozen=True)
class PublishedTransaction:
    """One archived transaction together with its publication metadata."""

    transaction: Transaction
    epoch: int
    sequence: int
    publisher: str

    @property
    def txn_id(self) -> str:
        """The transaction's id — content-addressed when auto-generated (see
        :class:`~repro.core.transactions.TransactionBuilder`), so identical
        across interpreter runs and never dependent on builtin ``hash()``."""
        return self.transaction.txn_id

    @property
    def digest(self) -> int:
        """Process-stable 64-bit content digest of this archive entry, the
        identity the reconciliation sketches operate on.  Cached: sketches
        hash every entry once per gossip session."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            from .sketch import entry_digest

            cached = entry_digest(self)
            object.__setattr__(self, "_digest", cached)
        return cached

    @property
    def wire_size(self) -> int:
        """Bytes needed to ship this entry in a reconciliation batch (the
        length of its canonical encoding), cached like :attr:`digest`."""
        cached = self.__dict__.get("_wire_size")
        if cached is None:
            from .sketch import entry_wire_size

            cached = entry_wire_size(self)
            object.__setattr__(self, "_wire_size", cached)
        return cached


class EpochLog:
    """An epoch-ordered, sequence-keyed log of published transactions.

    Entries are kept sorted by ``(epoch, sequence)`` — the canonical total
    order of the archive — with a parallel epoch array for ``since`` bisection
    and per-publisher/per-id indexes.  Entries normally arrive in order
    (appends are O(1)); out-of-order arrival (anti-entropy back-fill on a
    stale shard replica) degrades gracefully to an O(n) insort.
    """

    def __init__(self) -> None:
        self._entries: list[PublishedTransaction] = []
        self._order: list[tuple[int, int]] = []  # (epoch, sequence), sorted
        self._by_id: dict[str, PublishedTransaction] = {}
        self._by_publisher: dict[str, list[PublishedTransaction]] = {}

    # -- mutation -----------------------------------------------------------
    def add(self, entry: PublishedTransaction) -> None:
        key = (entry.epoch, entry.sequence)
        if self._order and key < self._order[-1]:
            position = bisect_right(self._order, key)
            insort(self._order, key)
            self._entries.insert(position, entry)
        else:
            self._order.append(key)
            self._entries.append(entry)
        self._by_id[entry.txn_id] = entry
        self._by_publisher.setdefault(entry.publisher, []).append(entry)

    # -- lookup -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PublishedTransaction]:
        return iter(self._entries)

    def __contains__(self, txn_id: str) -> bool:
        return txn_id in self._by_id

    def get(self, txn_id: str) -> Optional[PublishedTransaction]:
        return self._by_id.get(txn_id)

    def entries(self) -> list[PublishedTransaction]:
        return list(self._entries)

    def since(
        self, epoch: int, exclude_publisher: Optional[str] = None
    ) -> list[PublishedTransaction]:
        """Entries published strictly after ``epoch``, in canonical order."""
        # Every sequence is > -1, so this finds the first entry with a
        # strictly greater epoch.
        start = bisect_right(self._order, (epoch, float("inf")))
        tail = self._entries[start:]
        if exclude_publisher is None:
            return tail
        return [entry for entry in tail if entry.publisher != exclude_publisher]

    def by_publisher(self, publisher: str) -> list[PublishedTransaction]:
        return list(self._by_publisher.get(publisher, ()))

    def latest_epoch(self) -> int:
        return self._order[-1][0] if self._order else 0


def validate_publication_batch(
    transactions: list[Transaction],
    epoch: int,
    publisher: str,
    latest_epoch: int,
    already_published,
) -> None:
    """The shared publication contract, checked before anything is appended.

    Rejects the whole batch (epoch regression, duplicate ids — within the
    batch or against ``already_published(txn_id)`` — and foreign
    transactions) so that publication is atomic for every store backend.
    """
    if epoch < latest_epoch:
        raise PublicationError(
            f"cannot archive at epoch {epoch}: the store is already at "
            f"epoch {latest_epoch} and the log is epoch-ordered"
        )
    batch_ids: set[str] = set()
    for transaction in transactions:
        if transaction.txn_id in batch_ids or already_published(transaction.txn_id):
            raise PublicationError(
                f"transaction {transaction.txn_id!r} was already published"
            )
        if transaction.peer != publisher:
            raise PublicationError(
                f"peer {publisher!r} cannot publish transaction "
                f"{transaction.txn_id!r} owned by {transaction.peer!r}"
            )
        batch_ids.add(transaction.txn_id)


class UpdateStore:
    """Append-only, epoch-ordered archive of published transactions."""

    def __init__(self) -> None:
        self._log = EpochLog()

    # -- publication ------------------------------------------------------------
    def archive(
        self, transactions: Iterable[Transaction], epoch: int, publisher: str
    ) -> list[PublishedTransaction]:
        """Archive a batch of transactions published at ``epoch``.

        The batch is validated as a whole first: either every transaction is
        archived or none is.
        """
        batch = list(transactions)
        validate_publication_batch(
            batch, epoch, publisher, self._log.latest_epoch(),
            lambda txn_id: txn_id in self._log,
        )
        archived = []
        for transaction in batch:
            stamped = transaction.with_epoch(epoch)
            entry = PublishedTransaction(
                transaction=stamped,
                epoch=epoch,
                sequence=len(self._log),
                publisher=publisher,
            )
            self._log.add(entry)
            archived.append(entry)
        return archived

    # -- retrieval ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._log)

    def all_entries(self) -> list[PublishedTransaction]:
        return self._log.entries()

    def transactions(self) -> list[Transaction]:
        return [entry.transaction for entry in self._log]

    def entry(self, txn_id: str) -> PublishedTransaction:
        entry = self._log.get(txn_id)
        if entry is None:
            raise PublicationError(f"transaction {txn_id!r} was never published")
        return entry

    def contains(self, txn_id: str) -> bool:
        return txn_id in self._log

    def published_since(
        self, epoch: int, exclude_publisher: Optional[str] = None
    ) -> list[PublishedTransaction]:
        """Entries published strictly after ``epoch`` (optionally excluding a peer)."""
        return self._log.since(epoch, exclude_publisher)

    def published_by(self, publisher: str) -> list[PublishedTransaction]:
        return self._log.by_publisher(publisher)

    def latest_epoch(self) -> int:
        return self._log.latest_epoch()

    def antecedents_map(self) -> dict[str, frozenset[str]]:
        """``{txn_id: antecedents}`` for every archived transaction."""
        return {
            entry.txn_id: entry.transaction.antecedents for entry in self._log
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UpdateStore({len(self._log)} transactions, epoch {self.latest_epoch()})"
