"""The sketch-based set-reconciliation protocol.

A *session* makes two entry sets equal while moving bytes proportional to
their symmetric difference, not their size:

1. **challenge** — both sides exchange a tiny summary (count, XOR checksum,
   completeness watermark, per-publisher epoch clock).  Equal summaries end
   the session after two messages: already converged.
2. **sketch exchange** — one side ships a sketch of its entries *above the
   shared completeness watermark* (everything below it is provably held by
   both sides and cancels for free).  IBLT sketches are subtracted and
   decoded into the exact symmetric difference; Bloom sketches let the
   receiver enumerate what the sender is definitely missing.
3. **diff transfer** — the decoded missing entries travel as explicit
   batches; a request message fetches the entries only the other side can
   supply.
4. **verify / grow / fall back** — the session re-exchanges checksums.  If
   the sets still differ (sketch capacity exceeded, Bloom false positives)
   the sketch is regrown by ``growth``× with a fresh seed and the exchange
   retried, up to ``max_attempts``; after that the session falls back to
   cursor replay from the completeness watermark.  Fallback ships the whole
   log tail — the cost the sketches exist to avoid — but it is always
   correct: decode failure is a performance event, never a wrongness event.

Every message is an explicit dataclass with a ``byte_size()``, and every
send is accounted in :class:`ReconcileStats` (and, when a
:class:`~repro.p2p.network.Network` is attached, in its per-peer
``message_stats()``), so benchmarks report bytes moved rather than just
wall-clock latency.

Completeness watermarks make the fallback sound: ``complete_until`` is the
epoch up to which a side provably holds *every* archived entry.  It starts
at a side's last verified session against the authoritative archive and
propagates through sessions (if you now hold a superset of a side complete
through epoch e, you are complete through e too).  Any entry a side is
missing therefore lies strictly above its watermark, so replaying the
partner's log tail from that watermark misses nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Optional, Union

from ..errors import SketchError
from ..obs import Observability
from .network import Network
from .sketch import (
    CompactClock,
    CountingBloomSketch,
    IBLTSketch,
    PeerClock,
    stable_hash,
)
from .store import EpochLog, PublishedTransaction

#: Fixed per-message envelope cost (sender/receiver/kind framing).
MESSAGE_HEADER_BYTES = 16

ARCHIVE_NAME = "#archive"


# -- protocol messages ---------------------------------------------------------------

@dataclass(frozen=True)
class SessionChallenge:
    """Opening summary: enough to detect convergence in one round trip."""

    kind = "challenge"
    sender: str
    count: int
    checksum: int
    latest_epoch: int
    complete_until: int
    clock_items: tuple[tuple[str, int], ...]

    def byte_size(self) -> int:
        clock_bytes = sum(len(name.encode("utf-8")) + 8 for name, _ in self.clock_items)
        return MESSAGE_HEADER_BYTES + 32 + clock_bytes


@dataclass(frozen=True)
class SketchMessage:
    """One side's sketch of its entries above the shared watermark."""

    kind = "sketch"
    sender: str
    algorithm: str
    capacity: int
    attempt: int
    sketch: Union[IBLTSketch, CountingBloomSketch]

    def byte_size(self) -> int:
        return MESSAGE_HEADER_BYTES + 12 + self.sketch.byte_size()


@dataclass(frozen=True)
class EntryRequest:
    """Digests of entries the sender wants shipped back."""

    kind = "request"
    sender: str
    digests: tuple[int, ...]

    def byte_size(self) -> int:
        return MESSAGE_HEADER_BYTES + 8 * len(self.digests)


@dataclass(frozen=True)
class EntryBatch:
    """The actual transaction transfer: archived entries, canonical encoding."""

    kind = "batch"
    sender: str
    entries: tuple[PublishedTransaction, ...]

    def byte_size(self) -> int:
        return MESSAGE_HEADER_BYTES + sum(entry.wire_size for entry in self.entries)


@dataclass(frozen=True)
class CursorRequest:
    """Fallback: replay everything after the sender's completeness watermark."""

    kind = "cursor"
    sender: str
    since_epoch: int

    def byte_size(self) -> int:
        return MESSAGE_HEADER_BYTES + 8


@dataclass(frozen=True)
class ClockMessage:
    """Post-transfer verification: a constant-size set summary."""

    kind = "clock"
    sender: str
    clock: CompactClock

    def byte_size(self) -> int:
        return MESSAGE_HEADER_BYTES + self.clock.byte_size()


# -- traffic accounting --------------------------------------------------------------

@dataclass
class ReconcileStats:
    """Cumulative traffic/outcome counters across reconciliation sessions."""

    sessions: int = 0
    unchanged_sessions: int = 0
    converged_sessions: int = 0
    messages: int = 0
    bytes: int = 0
    sketch_bytes: int = 0
    entry_bytes: int = 0
    entries_delivered: int = 0
    decode_failures: int = 0
    fallbacks: int = 0

    def snapshot(self) -> "ReconcileStats":
        return ReconcileStats(**self.to_dict())

    def since(self, earlier: "ReconcileStats") -> "ReconcileStats":
        """Counter deltas accumulated after ``earlier`` was snapshotted."""
        return ReconcileStats(
            **{
                item.name: getattr(self, item.name) - getattr(earlier, item.name)
                for item in fields(self)
            }
        )

    def to_dict(self) -> dict:
        return {item.name: getattr(self, item.name) for item in fields(self)}


@dataclass(frozen=True)
class SessionResult:
    """Outcome of one reconciliation session between two entry sets."""

    converged: bool
    delivered_left: int
    delivered_right: int
    attempts: int
    fell_back: bool

    @property
    def delivered(self) -> int:
        return self.delivered_left + self.delivered_right


# -- entry sets ----------------------------------------------------------------------

class EntryCache:
    """A peer's local set of archived entries, indexed for reconciliation.

    Keeps the entries in canonical ``(epoch, sequence)`` order (the same
    total order every store backend serves), a digest index, an incremental
    XOR checksum, a per-publisher epoch clock, and the completeness
    watermark ``complete_until`` documented in the module docstring.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._log = EpochLog()
        self._by_digest: dict[int, PublishedTransaction] = {}
        self._checksum = 0
        self._clock = PeerClock()
        self._complete_until = 0

    # -- summaries ---------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._by_digest)

    @property
    def checksum(self) -> int:
        return self._checksum

    @property
    def complete_until(self) -> int:
        return self._complete_until

    def latest_epoch(self) -> int:
        return self._log.latest_epoch()

    def clock(self) -> PeerClock:
        return self._clock

    def compact_clock(self) -> CompactClock:
        return CompactClock(self.count, self._checksum, self.latest_epoch())

    # -- content -----------------------------------------------------------------
    def digests(self) -> Iterable[int]:
        return self._by_digest.keys()

    def digests_since(self, epoch: int) -> list[int]:
        return [entry.digest for entry in self._log.since(epoch)]

    def entries(self) -> list[PublishedTransaction]:
        return self._log.entries()

    def entries_since(self, epoch: int) -> list[PublishedTransaction]:
        return self._log.since(epoch)

    def entries_for(self, digests: Iterable[int]) -> list[PublishedTransaction]:
        found = (self._by_digest.get(digest) for digest in sorted(digests))
        return [entry for entry in found if entry is not None]

    # -- mutation ----------------------------------------------------------------
    def add_entries(self, entries: Iterable[PublishedTransaction]) -> int:
        added = 0
        for entry in entries:
            digest = entry.digest
            if digest in self._by_digest:
                continue
            self._by_digest[digest] = entry
            self._log.add(entry)
            self._checksum ^= digest
            self._clock.observe(entry.publisher, entry.epoch)
            added += 1
        return added

    def mark_complete(self, epoch: int) -> None:
        if epoch > self._complete_until:
            self._complete_until = epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EntryCache({self.name!r}, {self.count} entries, "
            f"complete<={self._complete_until})"
        )


class StoreView:
    """The authoritative archive as a reconciliation participant.

    Mirrors the store into an :class:`EntryCache` incrementally (pulling only
    epochs at or above the mirror's latest on each :meth:`refresh`) so
    sketch sessions against the store cost O(tail), not O(log).  The store
    is the source of truth: it never accepts entries from peers — every
    entry reaches it through ``archive()`` at publication — so
    :meth:`add_entries` ignores its input, and the view is complete through
    the store's latest epoch by definition.
    """

    def __init__(self, store, name: str = ARCHIVE_NAME) -> None:
        self._store = store
        self._cache = EntryCache(name)
        self.name = name

    def refresh(self) -> None:
        # Re-pull from one epoch below the mirror's latest: a second batch
        # archived at the same epoch would otherwise be missed.  add_entries
        # dedupes the refetched overlap by digest.
        fresh = self._store.published_since(self._cache.latest_epoch() - 1)
        self._cache.add_entries(fresh)
        self._cache.mark_complete(self._store.latest_epoch())

    # -- EntryCache protocol, delegated to the mirror ----------------------------
    @property
    def count(self) -> int:
        return self._cache.count

    @property
    def checksum(self) -> int:
        return self._cache.checksum

    @property
    def complete_until(self) -> int:
        return self._cache.complete_until

    def latest_epoch(self) -> int:
        return self._cache.latest_epoch()

    def clock(self) -> PeerClock:
        return self._cache.clock()

    def compact_clock(self) -> CompactClock:
        return self._cache.compact_clock()

    def digests(self) -> Iterable[int]:
        return self._cache.digests()

    def digests_since(self, epoch: int) -> list[int]:
        return self._cache.digests_since(epoch)

    def entries_since(self, epoch: int) -> list[PublishedTransaction]:
        return self._cache.entries_since(epoch)

    def entries_for(self, digests: Iterable[int]) -> list[PublishedTransaction]:
        return self._cache.entries_for(digests)

    def add_entries(self, entries: Iterable[PublishedTransaction]) -> int:
        return 0

    def mark_complete(self, epoch: int) -> None:
        self._cache.mark_complete(epoch)


# -- the reconciler ------------------------------------------------------------------

@dataclass(frozen=True)
class ReconcileConfig:
    """Knobs of the sketch protocol (mirrored from ``StoreConfig``)."""

    algorithm: str = "iblt"           # "iblt" | "bloom"
    capacity: int = 32                # initial sketch capacity (diff elements)
    growth: int = 4                   # capacity multiplier per retry
    max_attempts: int = 3             # sketch attempts before cursor fallback


class SetReconciler:
    """Runs reconciliation sessions and accounts every message."""

    #: Registry series mirrored from :class:`ReconcileStats` after every
    #: session (satellite of the shared observability layer: the dataclass
    #: keeps its exact shape for reports, the registry gets the same counts
    #: under stable dotted names).
    _METRIC_NAMES = (
        ("sessions", "gossip.sessions"),
        ("unchanged_sessions", "gossip.sessions_unchanged"),
        ("converged_sessions", "gossip.sessions_converged"),
        ("messages", "gossip.messages"),
        ("bytes", "gossip.bytes"),
        ("sketch_bytes", "gossip.bytes_sketch"),
        ("entry_bytes", "gossip.bytes_entries"),
        ("entries_delivered", "gossip.entries_delivered"),
        ("decode_failures", "sketch.decode.failures"),
        ("fallbacks", "gossip.fallbacks"),
    )

    def __init__(
        self,
        config: ReconcileConfig = ReconcileConfig(),
        network: Optional[Network] = None,
        stats: Optional[ReconcileStats] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        self._config = config
        self._network = network
        if observability is not None:
            self._obs = observability
        elif network is not None:
            self._obs = network.obs
        else:
            self._obs = Observability()
        self.stats = stats if stats is not None else ReconcileStats()

    # -- transport ---------------------------------------------------------------
    def _send(self, sender: str, receiver: str, message) -> None:
        size = message.byte_size()
        self.stats.messages += 1
        self.stats.bytes += size
        if message.kind == "sketch":
            self.stats.sketch_bytes += size
        elif message.kind == "batch":
            self.stats.entry_bytes += size
        if self._network is not None:
            self._network.record_message(sender, receiver, message.kind, size)

    def _challenge(self, side) -> SessionChallenge:
        return SessionChallenge(
            sender=side.name,
            count=side.count,
            checksum=side.checksum,
            latest_epoch=side.latest_epoch(),
            complete_until=side.complete_until,
            clock_items=side.clock().items(),
        )

    # -- session -----------------------------------------------------------------
    def reconcile(self, left, right) -> SessionResult:
        """Make ``left`` and ``right`` hold the same entries; returns what
        the session delivered and how it got there."""
        before = self.stats.snapshot()
        with self._obs.span("gossip.session", left=left.name, right=right.name):
            result = self._run_session(left, right)
        moved = self.stats.since(before)
        metrics = self._obs.metrics
        for stat_field, metric_name in self._METRIC_NAMES:
            delta = getattr(moved, stat_field)
            if delta:
                metrics.counter_add(metric_name, delta)
        return result

    def _run_session(self, left, right) -> SessionResult:
        self.stats.sessions += 1
        challenge_left = self._challenge(left)
        self._send(left.name, right.name, challenge_left)
        challenge_right = self._challenge(right)
        self._send(right.name, left.name, challenge_right)
        if (
            challenge_left.count == challenge_right.count
            and challenge_left.checksum == challenge_right.checksum
        ):
            self.stats.unchanged_sessions += 1
            self._propagate_completeness(left, right)
            return SessionResult(True, 0, 0, 0, False)

        delivered_left = delivered_right = 0
        base_capacity = max(
            self._config.capacity,
            2 * abs(challenge_left.count - challenge_right.count),
        )
        watermark = min(left.complete_until, right.complete_until)
        for attempt in range(self._config.max_attempts):
            capacity = base_capacity * (self._config.growth ** attempt)
            seed = stable_hash(("reconcile-attempt", attempt, capacity))
            if self._config.algorithm == "iblt":
                got_left, got_right, converged = self._iblt_attempt(
                    left, right, watermark, capacity, attempt, seed
                )
            else:
                got_left, got_right, converged = self._bloom_attempt(
                    left, right, watermark, capacity, attempt, seed
                )
            delivered_left += got_left
            delivered_right += got_right
            self.stats.entries_delivered += got_left + got_right
            if converged:
                self.stats.converged_sessions += 1
                self._propagate_completeness(left, right)
                return SessionResult(True, delivered_left, delivered_right, attempt + 1, False)
            self.stats.decode_failures += 1

        self.stats.fallbacks += 1
        got_left, got_right = self._cursor_fallback(left, right)
        delivered_left += got_left
        delivered_right += got_right
        self.stats.entries_delivered += got_left + got_right
        converged = self._verify(left, right)
        if converged:
            self.stats.converged_sessions += 1
            self._propagate_completeness(left, right)
        return SessionResult(
            converged, delivered_left, delivered_right, self._config.max_attempts, True
        )

    # -- sketch attempts ---------------------------------------------------------
    def _iblt_attempt(
        self, left, right, watermark: int, capacity: int, attempt: int, seed: int
    ) -> tuple[int, int, bool]:
        sketch_left = IBLTSketch(capacity, seed=seed)
        for digest in left.digests_since(watermark):
            sketch_left.add(digest)
        self._send(
            left.name, right.name,
            SketchMessage(left.name, "iblt", capacity, attempt, sketch_left),
        )
        sketch_right = IBLTSketch(capacity, seed=seed)
        for digest in right.digests_since(watermark):
            sketch_right.add(digest)
        with self._obs.span(
            "sketch.decode", algorithm="iblt", capacity=capacity, attempt=attempt
        ):
            try:
                only_left, only_right = sketch_left.subtract(sketch_right).decode()
            except SketchError:
                return 0, 0, False
        self._obs.metrics.counter_add("sketch.decode.successes", 1)
        batch_to_left = EntryBatch(right.name, tuple(right.entries_for(only_right)))
        self._send(right.name, left.name, batch_to_left)
        request = EntryRequest(right.name, tuple(sorted(only_left)))
        self._send(right.name, left.name, request)
        delivered_left = left.add_entries(batch_to_left.entries)
        batch_to_right = EntryBatch(left.name, tuple(left.entries_for(request.digests)))
        self._send(left.name, right.name, batch_to_right)
        delivered_right = right.add_entries(batch_to_right.entries)
        return delivered_left, delivered_right, self._verify(left, right)

    def _bloom_attempt(
        self, left, right, watermark: int, capacity: int, attempt: int, seed: int
    ) -> tuple[int, int, bool]:
        bloom_left = CountingBloomSketch(capacity, seed=seed)
        for digest in left.digests_since(watermark):
            bloom_left.add(digest)
        self._send(
            left.name, right.name,
            SketchMessage(left.name, "bloom", capacity, attempt, bloom_left),
        )
        # The receiver answers with everything the sender definitely lacks,
        # plus its own filter so the sender can reciprocate.
        with self._obs.span(
            "sketch.decode", algorithm="bloom", capacity=capacity, attempt=attempt
        ):
            missing_at_left = [
                entry
                for entry in right.entries_since(watermark)
                if entry.digest not in bloom_left
            ]
        bloom_right = CountingBloomSketch(capacity, seed=seed)
        for digest in right.digests_since(watermark):
            bloom_right.add(digest)
        self._send(right.name, left.name, EntryBatch(right.name, tuple(missing_at_left)))
        self._send(
            right.name, left.name,
            SketchMessage(right.name, "bloom", capacity, attempt, bloom_right),
        )
        delivered_left = left.add_entries(missing_at_left)
        missing_at_right = [
            entry
            for entry in left.entries_since(watermark)
            if entry.digest not in bloom_right
        ]
        self._send(left.name, right.name, EntryBatch(left.name, tuple(missing_at_right)))
        delivered_right = right.add_entries(missing_at_right)
        return delivered_left, delivered_right, self._verify(left, right)

    # -- fallback and verification -----------------------------------------------
    def _cursor_fallback(self, left, right) -> tuple[int, int]:
        """Cursor replay: each side ships its whole tail above the *other*
        side's completeness watermark.  O(tail) bytes, unconditionally
        correct (see the module docstring)."""
        request_left = CursorRequest(left.name, left.complete_until)
        self._send(left.name, right.name, request_left)
        batch_to_left = EntryBatch(
            right.name, tuple(right.entries_since(request_left.since_epoch))
        )
        self._send(right.name, left.name, batch_to_left)
        delivered_left = left.add_entries(batch_to_left.entries)
        request_right = CursorRequest(right.name, right.complete_until)
        self._send(right.name, left.name, request_right)
        batch_to_right = EntryBatch(
            left.name, tuple(left.entries_since(request_right.since_epoch))
        )
        self._send(left.name, right.name, batch_to_right)
        delivered_right = right.add_entries(batch_to_right.entries)
        return delivered_left, delivered_right

    def _verify(self, left, right) -> bool:
        clock_left = left.compact_clock()
        clock_right = right.compact_clock()
        self._send(left.name, right.name, ClockMessage(left.name, clock_left))
        self._send(right.name, left.name, ClockMessage(right.name, clock_right))
        return clock_left.agrees_with(clock_right)

    def _propagate_completeness(self, left, right) -> None:
        # The sides now hold equal sets; each is complete at least as far as
        # the better-informed of the two was.
        watermark = max(left.complete_until, right.complete_until)
        left.mark_complete(watermark)
        right.mark_complete(watermark)


def cursor_transfer_bytes(entries: Iterable[PublishedTransaction]) -> int:
    """Bytes a plain cursor replay of ``entries`` would move (request +
    batch), for baseline comparisons in benchmarks and examples."""
    batch = MESSAGE_HEADER_BYTES + sum(entry.wire_size for entry in entries)
    return (MESSAGE_HEADER_BYTES + 8) + batch
