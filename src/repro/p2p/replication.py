"""Replica placement of published transactions across peers.

The full ORCHESTRA system stores published updates in a distributed hash
table; what matters to the algorithms above it is that a published
transaction can still be retrieved when its publisher is offline, as long as
enough replica holders remain online.  :class:`ReplicationManager` simulates
that property: each published transaction is assigned to ``replication_factor``
peer slots chosen deterministically among the peers online at publication
time (always including the durable archive itself, so the paper's Scenario 5
— publisher offline, data still available — holds by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.hashing import stable_text_hash
from ..errors import NetworkError
from .network import Network


@dataclass(frozen=True)
class ReplicaPlacement:
    """The peers holding replicas of one published transaction."""

    txn_id: str
    holders: tuple[str, ...]

    def __contains__(self, peer: str) -> bool:
        return peer in self.holders


class ReplicationManager:
    """Assigns and tracks replica holders for published transactions."""

    def __init__(self, network: Network, replication_factor: int = 2) -> None:
        if replication_factor < 1:
            raise NetworkError("replication factor must be at least 1")
        self._network = network
        self._replication_factor = replication_factor
        self._placements: dict[str, ReplicaPlacement] = {}

    @property
    def replication_factor(self) -> int:
        return self._replication_factor

    # -- placement --------------------------------------------------------------
    def place(self, txn_id: str, publisher: str) -> ReplicaPlacement:
        """Choose replica holders for a newly published transaction.

        Holders are chosen deterministically (by hashing the transaction id)
        among the peers online at publication time, preferring peers other
        than the publisher so that the data survives its disconnection.
        """
        if txn_id in self._placements:
            return self._placements[txn_id]
        online = sorted(self._network.online_peers())
        if not online:
            online = [publisher]
        others = [peer for peer in online if peer != publisher] or online
        ranked = sorted(others, key=lambda peer: self._rank(txn_id, peer))
        holders = tuple(ranked[: self._replication_factor])
        placement = ReplicaPlacement(txn_id=txn_id, holders=holders)
        self._placements[txn_id] = placement
        return placement

    @staticmethod
    def _rank(txn_id: str, peer: str) -> int:
        # The shared process-stable digest (SHA-256 prefix): placement never
        # depends on builtin hash() and is identical across interpreter runs.
        return stable_text_hash(f"{txn_id}:{peer}")

    # -- re-replication -----------------------------------------------------------
    def repair(self, txn_id: str) -> Optional[ReplicaPlacement]:
        """Restore the replication factor of one placement after churn.

        Offline holders are replaced by online peers (chosen by the same
        deterministic ranking as :meth:`place`), preferring to keep surviving
        holders so data is copied, not re-created.  When fewer online peers
        exist than the replication factor the placement is left as large as
        the network allows.  Returns the (possibly updated) placement, or
        ``None`` for transactions that were never placed.
        """
        placement = self._placements.get(txn_id)
        if placement is None:
            return None
        survivors = [peer for peer in placement.holders if self._network.is_online(peer)]
        if len(survivors) >= self._replication_factor:
            return placement
        candidates = sorted(
            self._network.online_peers() - set(survivors),
            key=lambda peer: self._rank(txn_id, peer),
        )
        needed = self._replication_factor - len(survivors)
        holders = tuple(survivors + candidates[:needed])
        if not holders:
            # Every peer is offline: keep the stale placement so the data's
            # location is still known when holders reconnect.
            return placement
        repaired = ReplicaPlacement(txn_id=txn_id, holders=holders)
        self._placements[txn_id] = repaired
        return repaired

    def repair_all(self) -> int:
        """Run :meth:`repair` over every placement; returns how many changed."""
        changed = 0
        for txn_id in list(self._placements):
            before = self._placements[txn_id]
            if self.repair(txn_id) is not before:
                changed += 1
        return changed

    # -- availability -------------------------------------------------------------
    def placement(self, txn_id: str) -> Optional[ReplicaPlacement]:
        return self._placements.get(txn_id)

    def available(self, txn_id: str) -> bool:
        """Is at least one replica holder of the transaction currently online?

        The durable archive keeps every transaction retrievable in the
        simulation; this predicate reports what a purely peer-hosted overlay
        would offer, which the churn benchmark contrasts with the archive.
        """
        placement = self._placements.get(txn_id)
        if placement is None:
            return False
        return any(self._network.is_online(peer) for peer in placement.holders)

    def availability_ratio(self, txn_ids: Iterable[str]) -> float:
        """Fraction of the given transactions with at least one online holder."""
        ids = list(txn_ids)
        if not ids:
            return 1.0
        available = sum(1 for txn_id in ids if self.available(txn_id))
        return available / len(ids)
