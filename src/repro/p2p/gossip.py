"""Fanout-f epidemic anti-entropy over reconciliation sessions.

In cursor mode every peer catches up by pulling its log tail straight from
the archive — N peers, N full cursor replays, all served by one store.  The
gossip scheduler replaces that with epidemic exchange: each round, every
online peer runs a reconciliation session (:mod:`repro.p2p.reconcile`) with
``fanout`` partners chosen deterministically from the online peers plus the
archive itself.  Entries spread peer-to-peer in O(log N) rounds, the store
serves only its share of sessions, and each session moves O(diff) bytes.

Partner choice hashes ``(round, peer, candidate)`` with the process-stable
hash, so a run is reproducible across processes and store backends — the
differential oracles rely on gossip making *identical* decisions whether
the archive underneath is centralized or distributed.

Convergence is detected by comparing each online peer's compact clock with
the archive's.  Epidemic spread converges with overwhelming probability,
but the scheduler does not gamble: any round that delivers nothing while
stale peers remain forces those peers through a direct session with the
archive, so :meth:`GossipCoordinator.run_until_converged` terminates within
its round budget deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import SyncError
from .network import Network
from .reconcile import (
    ARCHIVE_NAME,
    EntryCache,
    ReconcileConfig,
    ReconcileStats,
    SessionResult,
    SetReconciler,
    StoreView,
)
from .sketch import stable_hash
from .store import PublishedTransaction


@dataclass
class GossipReport:
    """What one anti-entropy phase (one ``run_until_converged``) did."""

    rounds: list[dict] = field(default_factory=list)
    converged: bool = True
    stats: Optional[ReconcileStats] = None

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    def to_dict(self) -> dict:
        payload = {
            "rounds": list(self.rounds),
            "round_count": self.round_count,
            "converged": self.converged,
        }
        if self.stats is not None:
            payload.update(self.stats.to_dict())
        return payload


class GossipCoordinator:
    """Schedules epidemic reconciliation sessions for a CDSS network."""

    def __init__(
        self,
        network: Network,
        store,
        config: ReconcileConfig = ReconcileConfig(),
        fanout: int = 2,
        observability=None,
    ) -> None:
        if fanout < 1:
            raise SyncError("gossip fanout must be at least 1")
        self.fanout = fanout
        self._network = network
        self._obs = observability if observability is not None else network.obs
        self._store_view = StoreView(store)
        self._reconciler = SetReconciler(
            config, network=network, observability=self._obs
        )
        self._caches: dict[str, EntryCache] = {}
        self._round = 0

    # -- membership and feeds ----------------------------------------------------
    def register_peer(self, name: str) -> None:
        self._caches.setdefault(name, EntryCache(name))

    def cache(self, name: str) -> EntryCache:
        return self._caches[name]

    def record_published(self, publisher: str, entries: Iterable[PublishedTransaction]) -> None:
        """Seed the publisher's own cache with entries it just archived."""
        if publisher in self._caches:
            self._caches[publisher].add_entries(entries)

    # -- observability -----------------------------------------------------------
    @property
    def stats(self) -> ReconcileStats:
        return self._reconciler.stats

    @property
    def rounds_run(self) -> int:
        return self._round

    def summary(
        self, since: Optional[ReconcileStats] = None, rounds_before: int = 0
    ) -> dict:
        stats = self.stats if since is None else self.stats.since(since)
        payload = {"rounds": self._round - rounds_before}
        payload.update(stats.to_dict())
        return payload

    # -- scheduling --------------------------------------------------------------
    def _online_members(self) -> list[str]:
        return sorted(self._network.online_peers() & set(self._caches))

    def _partners(self, peer: str, online: list[str]) -> list[str]:
        candidates = [ARCHIVE_NAME] + [other for other in online if other != peer]
        candidates.sort(
            key=lambda name: stable_hash(("gossip-partner", self._round, peer, name))
        )
        return candidates[: self.fanout]

    def _session(self, peer: str, partner: str) -> SessionResult:
        target = self._store_view if partner == ARCHIVE_NAME else self._caches[partner]
        return self._reconciler.reconcile(self._caches[peer], target)

    def _stale_peers(self, online: list[str]) -> list[str]:
        archive_clock = self._store_view.compact_clock()
        return [
            peer
            for peer in online
            if not self._caches[peer].compact_clock().agrees_with(archive_clock)
        ]

    def run_round(self) -> dict:
        """One epidemic round: every online peer sessions with ``fanout``
        deterministically chosen partners.  Returns the round's counters."""
        self._round += 1
        self._store_view.refresh()
        online = self._online_members()
        before = self.stats.snapshot()
        delivered = 0
        with self._obs.span(
            "gossip.round", index=self._round, participants=len(online)
        ):
            for peer in online:
                for partner in self._partners(peer, online):
                    delivered += self._session(peer, partner).delivered
        self._obs.metrics.counter_add("gossip.rounds", 1)
        delta = self.stats.since(before)
        return {
            "round": self._round,
            "participants": len(online),
            "sessions": delta.sessions,
            "messages": delta.messages,
            "bytes": delta.bytes,
            "entries_delivered": delta.entries_delivered,
            "decode_failures": delta.decode_failures,
            "fallbacks": delta.fallbacks,
        }

    def run_until_converged(self, max_rounds: Optional[int] = None) -> GossipReport:
        """Run rounds until every online peer's cache matches the archive.

        The budget defaults to comfortably above the O(log N) epidemic
        expectation; a zero-progress round triggers direct archive sessions
        for the remaining stale peers, so the budget is never the thing
        correctness hangs on.
        """
        self._store_view.refresh()
        online = self._online_members()
        before = self.stats.snapshot()
        report = GossipReport()
        if not online:
            report.stats = self.stats.since(before)
            return report
        if max_rounds is None:
            budget = 8
            population = len(online)
            while population > 1:
                population //= 2
                budget += 4
            max_rounds = budget
        for _ in range(max_rounds):
            if not self._stale_peers(online):
                break
            round_info = self.run_round()
            report.rounds.append(round_info)
            stale = self._stale_peers(online)
            if stale and round_info["entries_delivered"] == 0:
                # Deterministic repair: rumor-mongering made no progress, so
                # put every stale peer directly in front of the archive.
                for peer in stale:
                    self._session(peer, ARCHIVE_NAME)
        report.converged = not self._stale_peers(online)
        report.stats = self.stats.since(before)
        if not report.converged:
            raise SyncError(
                f"gossip anti-entropy failed to converge within {max_rounds} rounds "
                f"(stale: {', '.join(self._stale_peers(online))})"
            )
        return report

    # -- catch-up for the reconcile path ----------------------------------------
    def catch_up(self, peer: str) -> SessionResult:
        """Bring one peer's cache fully up to date with the archive (a cheap
        two-message challenge when gossip already converged it)."""
        self._store_view.refresh()
        return self._reconciler.reconcile(self._caches[peer], self._store_view)

    def entries_since(self, peer: str, epoch: int) -> list[PublishedTransaction]:
        """The peer-local answer to ``store.published_since`` — identical to
        it once :meth:`catch_up` has run (the sketch-vs-cursor oracle checks
        exactly this equivalence end to end)."""
        return self._caches[peer].entries_since(epoch)
