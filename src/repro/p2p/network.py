"""Simulated connectivity of the CDSS participants.

Peers operate autonomously and are only intermittently connected.  The
network tracks which peers are currently online, refuses store operations
from offline peers (configurable), and records an availability trace used by
the benchmarks to report behaviour under churn.

The trace is bounded (``trace_limit``, default 4096 events) so long fuzz
campaigns don't grow memory linearly with connectivity events; aggregate
churn statistics (:meth:`Network.churn_stats`) keep counting past the cap.
Subsystems that must react to churn — the distributed update store's
re-replication and anti-entropy passes — register listeners with
:meth:`Network.subscribe` and are invoked synchronously on every state
change.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..errors import NetworkError

#: Default bound on the in-memory connectivity trace.
DEFAULT_TRACE_LIMIT = 4096


@dataclass
class ConnectivityEvent:
    """One connect/disconnect event in the availability trace."""

    step: int
    peer: str
    online: bool


@dataclass
class MessageEvent:
    """One point-to-point message recorded by the reconciliation layer."""

    step: int
    sender: str
    receiver: str
    kind: str
    size: int


class Network:
    """Tracks online/offline state of every registered peer."""

    def __init__(
        self,
        peers: Iterable[str] = (),
        trace_limit: Optional[int] = DEFAULT_TRACE_LIMIT,
    ) -> None:
        if trace_limit is not None and trace_limit < 0:
            raise NetworkError("trace_limit must be None (unbounded) or >= 0")
        self._online: dict[str, bool] = {}
        self._step = 0
        self._trace: deque[ConnectivityEvent] = deque(maxlen=trace_limit)
        self._listeners: list[Callable[[ConnectivityEvent], None]] = []
        # Rolling churn counters, unaffected by the trace cap.
        self._connects: dict[str, int] = {}
        self._disconnects: dict[str, int] = {}
        # Message accounting, fed by the reconciliation layer.  The event
        # trace is bounded like the connectivity trace; the aggregate
        # counters keep counting past the cap.
        self._message_step = 0
        self._message_trace: deque[MessageEvent] = deque(maxlen=trace_limit)
        self._sent: dict[str, list[int]] = {}      # peer -> [messages, bytes]
        self._received: dict[str, list[int]] = {}
        for peer in peers:
            self.register(peer)

    # -- membership -----------------------------------------------------------
    def register(self, peer: str, online: bool = True) -> None:
        if peer in self._online:
            raise NetworkError(f"peer {peer!r} is already registered with the network")
        self._online[peer] = online

    def peers(self) -> set[str]:
        return set(self._online)

    def is_registered(self, peer: str) -> bool:
        return peer in self._online

    # -- connectivity -----------------------------------------------------------
    def is_online(self, peer: str) -> bool:
        try:
            return self._online[peer]
        except KeyError:
            raise NetworkError(f"peer {peer!r} is not registered with the network") from None

    def online_peers(self) -> set[str]:
        return {peer for peer, online in self._online.items() if online}

    def set_online(self, peer: str, online: bool) -> None:
        current = self.is_online(peer)
        if current == online:
            return
        self._online[peer] = online
        self._step += 1
        event = ConnectivityEvent(self._step, peer, online)
        self._trace.append(event)
        counters = self._connects if online else self._disconnects
        counters[peer] = counters.get(peer, 0) + 1
        for listener in self._listeners:
            listener(event)

    def connect(self, peer: str) -> None:
        self.set_online(peer, True)

    def disconnect(self, peer: str) -> None:
        self.set_online(peer, False)

    def require_online(self, peer: str, operation: str) -> None:
        if not self.is_online(peer):
            raise NetworkError(f"peer {peer!r} is offline and cannot {operation}")

    # -- listeners --------------------------------------------------------------
    def subscribe(self, listener: Callable[[ConnectivityEvent], None]) -> None:
        """Invoke ``listener`` synchronously on every connectivity change."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[ConnectivityEvent], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- tracing ---------------------------------------------------------------
    def trace(self) -> list[ConnectivityEvent]:
        """The most recent connectivity events (bounded by ``trace_limit``)."""
        return list(self._trace)

    def churn_stats(self) -> dict:
        """Aggregate churn counters; these keep counting past the trace cap."""
        connects = sum(self._connects.values())
        disconnects = sum(self._disconnects.values())
        per_peer = {
            peer: {
                "connects": self._connects.get(peer, 0),
                "disconnects": self._disconnects.get(peer, 0),
            }
            for peer in sorted(set(self._connects) | set(self._disconnects))
        }
        return {
            "events": self._step,
            "connects": connects,
            "disconnects": disconnects,
            "trace_retained": len(self._trace),
            "trace_dropped": self._step - len(self._trace),
            "per_peer": per_peer,
        }

    # -- message accounting -----------------------------------------------------
    def record_message(self, sender: str, receiver: str, kind: str, size: int) -> None:
        """Record one point-to-point message for the traffic counters.

        Senders/receivers need not be registered peers: the reconciliation
        layer also accounts traffic to the durable archive (``#archive``),
        which is a store, not a peer.
        """
        if size < 0:
            raise NetworkError("message size cannot be negative")
        self._message_step += 1
        self._message_trace.append(
            MessageEvent(self._message_step, sender, receiver, kind, size)
        )
        self._sent.setdefault(sender, [0, 0])
        self._sent[sender][0] += 1
        self._sent[sender][1] += size
        self._received.setdefault(receiver, [0, 0])
        self._received[receiver][0] += 1
        self._received[receiver][1] += size

    def message_trace(self) -> list[MessageEvent]:
        """The most recent messages (bounded by ``trace_limit``)."""
        return list(self._message_trace)

    def message_stats(self) -> dict:
        """Aggregate per-peer message/byte counters.

        Like :meth:`churn_stats`, the totals keep counting after the bounded
        event trace rolls over; ``trace_dropped`` says how many events the
        cap discarded.
        """
        participants = sorted(set(self._sent) | set(self._received))
        per_peer = {
            name: {
                "sent": self._sent.get(name, [0, 0])[0],
                "received": self._received.get(name, [0, 0])[0],
                "bytes_sent": self._sent.get(name, [0, 0])[1],
                "bytes_received": self._received.get(name, [0, 0])[1],
            }
            for name in participants
        }
        return {
            "messages": self._message_step,
            "bytes": sum(slot[1] for slot in self._sent.values()),
            "trace_retained": len(self._message_trace),
            "trace_dropped": self._message_step - len(self._message_trace),
            "per_peer": per_peer,
        }

    def availability(self) -> dict[str, bool]:
        return dict(self._online)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        online = sorted(self.online_peers())
        offline = sorted(self.peers() - self.online_peers())
        return f"Network(online={online}, offline={offline})"
