"""Simulated connectivity of the CDSS participants.

Peers operate autonomously and are only intermittently connected.  The
network tracks which peers are currently online, refuses store operations
from offline peers (configurable), and records a simple availability trace
used by the benchmarks to report behaviour under churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import NetworkError


@dataclass
class ConnectivityEvent:
    """One connect/disconnect event in the availability trace."""

    step: int
    peer: str
    online: bool


class Network:
    """Tracks online/offline state of every registered peer."""

    def __init__(self, peers: Iterable[str] = ()) -> None:
        self._online: dict[str, bool] = {}
        self._step = 0
        self._trace: list[ConnectivityEvent] = []
        for peer in peers:
            self.register(peer)

    # -- membership -----------------------------------------------------------
    def register(self, peer: str, online: bool = True) -> None:
        if peer in self._online:
            raise NetworkError(f"peer {peer!r} is already registered with the network")
        self._online[peer] = online

    def peers(self) -> set[str]:
        return set(self._online)

    def is_registered(self, peer: str) -> bool:
        return peer in self._online

    # -- connectivity -----------------------------------------------------------
    def is_online(self, peer: str) -> bool:
        try:
            return self._online[peer]
        except KeyError:
            raise NetworkError(f"peer {peer!r} is not registered with the network") from None

    def online_peers(self) -> set[str]:
        return {peer for peer, online in self._online.items() if online}

    def set_online(self, peer: str, online: bool) -> None:
        current = self.is_online(peer)
        if current == online:
            return
        self._online[peer] = online
        self._step += 1
        self._trace.append(ConnectivityEvent(self._step, peer, online))

    def connect(self, peer: str) -> None:
        self.set_online(peer, True)

    def disconnect(self, peer: str) -> None:
        self.set_online(peer, False)

    def require_online(self, peer: str, operation: str) -> None:
        if not self.is_online(peer):
            raise NetworkError(f"peer {peer!r} is offline and cannot {operation}")

    # -- tracing ---------------------------------------------------------------
    def trace(self) -> list[ConnectivityEvent]:
        return list(self._trace)

    def availability(self) -> dict[str, bool]:
        return dict(self._online)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        online = sorted(self.online_peers())
        offline = sorted(self.peers() - self.online_peers())
        return f"Network(online={online}, offline={offline})"
