"""Simulated connectivity of the CDSS participants.

Peers operate autonomously and are only intermittently connected.  The
network tracks which peers are currently online, refuses store operations
from offline peers (configurable), and records an availability trace used by
the benchmarks to report behaviour under churn.

The trace is bounded (``trace_limit``, default 4096 events) so long fuzz
campaigns don't grow memory linearly with connectivity events; aggregate
churn statistics (:meth:`Network.churn_stats`) keep counting past the cap.
Subsystems that must react to churn — the distributed update store's
re-replication and anti-entropy passes — register listeners with
:meth:`Network.subscribe` and are invoked synchronously on every state
change.

Beyond connectivity, the network can model *time*: attach a seeded
:class:`LatencyModel` (:meth:`Network.set_latency_model`) and every message
sent through :meth:`Network.transmit` is assigned a deterministic per-link
delay (propagation + jitter + bandwidth-proportional transfer + seeded
congestion spikes that reorder messages on a link).  Delays advance the
network's :class:`VirtualClock` — *simulated* time, never wall-clock, so
runs stay byte-reproducible.  Serial callers let :meth:`transmit` advance
the clock directly (messages occupy the timeline one after another); the
async sync runtime (:mod:`repro.api.async_sync`) computes delays with
``advance=False`` and awaits them on its virtual-time event loop instead,
so independent transfers overlap.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..core.hashing import stable_hash
from ..errors import NetworkError
from ..obs import Observability

#: Default bound on the in-memory connectivity trace.
DEFAULT_TRACE_LIMIT = 4096


class VirtualClock:
    """Monotonic simulated time, advanced explicitly — never by wall-clock."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by ``seconds`` (>= 0); returns the new time."""
        if seconds < 0:
            raise NetworkError("the virtual clock cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, instant: float) -> float:
        """Move forward to ``instant`` if it is in the future (never back)."""
        if instant > self._now:
            self._now = instant
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"


@dataclass(frozen=True)
class LatencyModel:
    """Deterministic per-link delay and bandwidth model.

    Every delay is derived from :func:`~repro.core.hashing.stable_hash` over
    ``(seed, sender, receiver, sequence)``, so the same configuration always
    produces the same message timeline regardless of process or interpreter
    — the model introduces realistic variance, not nondeterminism.

    Attributes:
        seed: Stream selector; different seeds give different (but equally
            reproducible) timelines.
        base_delay: One-way propagation delay per message, in simulated
            seconds.
        jitter: Uniform ±jitter added to the propagation delay.
        bandwidth: Link bandwidth in bytes per simulated second; each
            message additionally costs ``size / bandwidth``.
        spike_probability: Probability that a message hits a congestion
            spike (``spike_factor`` × base delay extra), which lets later
            messages on the same link overtake it — seeded reordering.
        spike_factor: Extra delay multiplier applied to spiked messages.
    """

    seed: int = 0
    base_delay: float = 0.005
    jitter: float = 0.003
    bandwidth: float = 1_000_000.0
    spike_probability: float = 0.1
    spike_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.jitter < 0:
            raise NetworkError("latency delays cannot be negative")
        if self.jitter > self.base_delay:
            raise NetworkError("jitter cannot exceed base_delay (negative delays)")
        if self.bandwidth <= 0:
            raise NetworkError("bandwidth must be positive")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise NetworkError("spike_probability must lie in [0, 1]")
        if self.spike_factor < 0:
            raise NetworkError("spike_factor cannot be negative")

    def delay(self, sender: str, receiver: str, size: int, sequence: int) -> float:
        """The simulated one-way delay of message ``sequence`` on a link."""
        digest = stable_hash(("latency", self.seed, sender, receiver, sequence))
        # Two independent uniform draws from disjoint digest bits.
        jitter_draw = (digest & 0xFFFF) / 0xFFFF
        spike_draw = ((digest >> 16) & 0xFFFF) / 0x10000
        delay = self.base_delay + (2.0 * jitter_draw - 1.0) * self.jitter
        if spike_draw < self.spike_probability:
            delay += self.base_delay * self.spike_factor
        return delay + size / self.bandwidth


@dataclass
class ConnectivityEvent:
    """One connect/disconnect event in the availability trace."""

    step: int
    peer: str
    online: bool


@dataclass
class MessageEvent:
    """One point-to-point message recorded by the reconciliation layer."""

    step: int
    sender: str
    receiver: str
    kind: str
    size: int


class Network:
    """Tracks online/offline state of every registered peer."""

    def __init__(
        self,
        peers: Iterable[str] = (),
        trace_limit: Optional[int] = DEFAULT_TRACE_LIMIT,
    ) -> None:
        if trace_limit is not None and trace_limit < 0:
            raise NetworkError("trace_limit must be None (unbounded) or >= 0")
        self._online: dict[str, bool] = {}
        self._step = 0
        self._trace: deque[ConnectivityEvent] = deque(maxlen=trace_limit)
        self._listeners: list[Callable[[ConnectivityEvent], None]] = []
        # Rolling churn counters, unaffected by the trace cap.
        self._connects: dict[str, int] = {}
        self._disconnects: dict[str, int] = {}
        # Message accounting, fed by the reconciliation layer.  The event
        # trace is bounded like the connectivity trace; the aggregate
        # counters live on the shared metrics registry (``net.*`` series,
        # labelled per participant) and keep counting past the cap.
        self._message_step = 0
        self._message_trace: deque[MessageEvent] = deque(maxlen=trace_limit)
        self.obs = Observability()
        # Simulated time: a latency model (None = instantaneous links) and
        # the virtual clock its delays advance.  Per-link sequence counters
        # feed the model's seeded delay stream.
        self.clock = VirtualClock()
        self.latency: Optional[LatencyModel] = None
        self._link_sequence: dict[tuple[str, str], int] = {}
        for peer in peers:
            self.register(peer)

    # -- simulated time ---------------------------------------------------------
    def set_latency_model(self, model: Optional[LatencyModel]) -> None:
        """Attach (or clear) the deterministic link delay/bandwidth model."""
        self.latency = model

    def link_delay(self, sender: str, receiver: str, size: int) -> float:
        """The next message's simulated delay on ``sender -> receiver``.

        Draws (and consumes) the link's next sequence number, so repeated
        calls walk the seeded delay stream deterministically.  Returns 0.0
        when no latency model is attached.
        """
        if self.latency is None:
            return 0.0
        link = (sender, receiver)
        sequence = self._link_sequence.get(link, 0)
        self._link_sequence[link] = sequence + 1
        return self.latency.delay(sender, receiver, size, sequence)

    def transmit(
        self, sender: str, receiver: str, kind: str, size: int, advance: bool = True
    ) -> float:
        """Record one message and return its simulated delay.

        With ``advance=True`` (serial callers) the virtual clock moves
        forward by the delay immediately: consecutive messages occupy the
        simulated timeline one after another, which is exactly the serial
        round-robin cost model.  The async runtime passes ``advance=False``
        and awaits the returned delay on its virtual-time event loop so
        independent transfers overlap.
        """
        self.record_message(sender, receiver, kind, size)
        delay = self.link_delay(sender, receiver, size)
        if advance and delay:
            self.clock.advance(delay)
        return delay

    # -- membership -----------------------------------------------------------
    def register(self, peer: str, online: bool = True) -> None:
        if peer in self._online:
            raise NetworkError(f"peer {peer!r} is already registered with the network")
        self._online[peer] = online

    def peers(self) -> set[str]:
        return set(self._online)

    def is_registered(self, peer: str) -> bool:
        return peer in self._online

    # -- connectivity -----------------------------------------------------------
    def is_online(self, peer: str) -> bool:
        try:
            return self._online[peer]
        except KeyError:
            raise NetworkError(f"peer {peer!r} is not registered with the network") from None

    def online_peers(self) -> set[str]:
        return {peer for peer, online in self._online.items() if online}

    def set_online(self, peer: str, online: bool) -> None:
        current = self.is_online(peer)
        if current == online:
            return
        self._online[peer] = online
        self._step += 1
        event = ConnectivityEvent(self._step, peer, online)
        self._trace.append(event)
        counters = self._connects if online else self._disconnects
        counters[peer] = counters.get(peer, 0) + 1
        for listener in self._listeners:
            listener(event)

    def connect(self, peer: str) -> None:
        self.set_online(peer, True)

    def disconnect(self, peer: str) -> None:
        self.set_online(peer, False)

    def require_online(self, peer: str, operation: str) -> None:
        if not self.is_online(peer):
            raise NetworkError(f"peer {peer!r} is offline and cannot {operation}")

    # -- listeners --------------------------------------------------------------
    def subscribe(self, listener: Callable[[ConnectivityEvent], None]) -> None:
        """Invoke ``listener`` synchronously on every connectivity change."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[ConnectivityEvent], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- tracing ---------------------------------------------------------------
    def trace(self) -> list[ConnectivityEvent]:
        """The most recent connectivity events (bounded by ``trace_limit``)."""
        return list(self._trace)

    def churn_stats(self) -> dict:
        """Aggregate churn counters; these keep counting past the trace cap."""
        connects = sum(self._connects.values())
        disconnects = sum(self._disconnects.values())
        per_peer = {
            peer: {
                "connects": self._connects.get(peer, 0),
                "disconnects": self._disconnects.get(peer, 0),
            }
            for peer in sorted(set(self._connects) | set(self._disconnects))
        }
        return {
            "events": self._step,
            "connects": connects,
            "disconnects": disconnects,
            "trace_retained": len(self._trace),
            "trace_dropped": self._step - len(self._trace),
            "per_peer": per_peer,
        }

    # -- message accounting -----------------------------------------------------
    def record_message(self, sender: str, receiver: str, kind: str, size: int) -> None:
        """Record one point-to-point message for the traffic counters.

        Senders/receivers need not be registered peers: the reconciliation
        layer also accounts traffic to the durable archive (``#archive``),
        which is a store, not a peer.
        """
        if size < 0:
            raise NetworkError("message size cannot be negative")
        self._message_step += 1
        self._message_trace.append(
            MessageEvent(self._message_step, sender, receiver, kind, size)
        )
        metrics = self.obs.metrics
        metrics.counter_add("net.messages.sent", 1, label=sender)
        metrics.counter_add("net.bytes.sent", size, label=sender)
        metrics.counter_add("net.messages.received", 1, label=receiver)
        metrics.counter_add("net.bytes.received", size, label=receiver)

    def message_trace(self) -> list[MessageEvent]:
        """The most recent messages (bounded by ``trace_limit``)."""
        return list(self._message_trace)

    def message_stats(self) -> dict:
        """Aggregate per-peer message/byte counters.

        Like :meth:`churn_stats`, the totals keep counting after the bounded
        event trace rolls over; ``trace_dropped`` says how many events the
        cap discarded.  This is a thin view over the shared metrics
        registry's ``net.*`` series — the registry is the single source of
        truth for traffic accounting.
        """
        metrics = self.obs.metrics
        messages_sent = metrics.labelled_counters("net.messages.sent")
        messages_received = metrics.labelled_counters("net.messages.received")
        bytes_sent = metrics.labelled_counters("net.bytes.sent")
        bytes_received = metrics.labelled_counters("net.bytes.received")
        participants = sorted(set(messages_sent) | set(messages_received))
        per_peer = {
            name: {
                "sent": int(messages_sent.get(name, 0)),
                "received": int(messages_received.get(name, 0)),
                "bytes_sent": int(bytes_sent.get(name, 0)),
                "bytes_received": int(bytes_received.get(name, 0)),
            }
            for name in participants
        }
        return {
            "messages": int(metrics.counter_value("net.messages.sent")),
            "bytes": int(metrics.counter_value("net.bytes.sent")),
            "trace_retained": len(self._message_trace),
            "trace_dropped": self._message_step - len(self._message_trace),
            "per_peer": per_peer,
        }

    def availability(self) -> dict[str, bool]:
        return dict(self._online)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        online = sorted(self.online_peers())
        offline = sorted(self.peers() - self.online_peers())
        return f"Network(online={online}, offline={offline})"
