"""Sharded, k-way-replicated distributed update store.

The paper's CDSS keeps published transactions in a *peer-to-peer update
store*: the archive is partitioned and replicated across the participants
themselves, so updates stay retrievable while their publishers are
disconnected.  This module is that availability layer.
:class:`DistributedUpdateStore` presents the exact
:class:`~repro.p2p.store.UpdateStore` API the rest of the system consumes,
but physically partitions the epoch-ordered log:

* **Placement** — the log is cut into epoch-ordered *segments* of
  ``segment_size`` epochs; each segment is mapped onto one of ``shard_count``
  shards by consistent hashing (:class:`ConsistentHashRing`), and each shard
  is hosted as :class:`ShardReplica` copies on ``replication_factor`` peers
  chosen by rendezvous hashing among the registered participants.
* **Writes** — ``archive`` validates the whole batch atomically (the same
  contract as the centralized store), then sends every entry to **all**
  reachable replicas of its shard.  Success requires at least one ack;
  landing fewer than ``write_quorum`` acks is recorded as a *degraded
  write* in :meth:`DistributedUpdateStore.health` rather than refused, so a
  mostly-offline network keeps the availability profile of the centralized
  archive (Dynamo-style sloppy quorum; anti-entropy repairs the missing
  copies later).
* **Quorum reads** — ``published_since`` performs a per-shard quorum read:
  the ``read_quorum`` most complete reachable replicas of every shard are
  consulted, their epoch-bisected tails unioned (a stale quorum member
  cannot hide entries a fresher one holds), and the per-shard results merged
  back into the canonical total order by global sequence number.
* **Churn tolerance** — the store subscribes to
  :class:`~repro.p2p.network.Network` connectivity events.  When a hosting
  peer disconnects, a re-replication pass copies the shard from a surviving
  replica onto the best-ranked online peer, restoring the replication
  factor.  When a peer reconnects, a gossip/anti-entropy round exchanges
  per-shard epoch vectors and back-fills whatever its replicas missed while
  offline; fully caught-up surplus replicas are then pruned back to the
  replication factor.

Because writes fan out to every reachable replica (not just a quorum),
losing up to ``replication_factor - 1`` replicas of a shard never loses a
published transaction, and sequential churn with repair in between never
degrades below the replication factor while enough peers remain online.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Optional

from ..core.hashing import mix64, stable_text_hash
from ..core.transactions import Transaction
from ..errors import ConfigurationError, PublicationError, QuorumError
from .network import ConnectivityEvent, Network
from .sketch import CompactClock
from .store import (
    EpochLog,
    PublishedTransaction,
    UpdateStore,
    validate_publication_batch,
)

# Placement hashing must be identical across processes and releases: shard
# routing is the shared stable-text digest (SHA-256 prefix), kept verbatim
# in repro.core.hashing.
_hash = stable_text_hash

#: Offset fed to :func:`mix64` when hashing sequences into replica clock
#: checksums — mix64(0) == 0 would make sequence 0 invisible to the XOR.
_SEQUENCE_SALT = 0x9E3779B97F4A7C15


class ConsistentHashRing:
    """Maps epoch-ordered log segments onto shards via consistent hashing.

    Each shard contributes ``points`` virtual nodes to the ring; a segment
    hashes to a position and is owned by the next shard clockwise.  The
    mapping is deterministic across processes and replicas (it depends only
    on ``shard_count`` and ``points``), which the differential oracles rely
    on.
    """

    def __init__(self, shard_count: int, points: int = 32) -> None:
        if shard_count < 1:
            raise ConfigurationError("shard_count must be >= 1")
        if points < 1:
            raise ConfigurationError("ring points must be >= 1")
        self._shard_count = shard_count
        ring = sorted(
            (_hash(f"shard:{shard}:{point}"), shard)
            for shard in range(shard_count)
            for point in range(points)
        )
        self._keys = [key for key, _ in ring]
        self._shards = [shard for _, shard in ring]

    @property
    def shard_count(self) -> int:
        return self._shard_count

    def shard_for(self, segment: int) -> int:
        position = bisect_right(self._keys, _hash(f"segment:{segment}"))
        if position == len(self._shards):
            position = 0
        return self._shards[position]


class ShardReplica:
    """One peer-hosted copy of a shard: an epoch-ordered log plus cursors.

    The replica tracks which global sequences it holds per segment and
    maintains incremental :class:`~repro.p2p.sketch.CompactClock` summaries
    (count + XOR checksum of sequence digests) at replica and segment
    granularity — the constant-size payloads anti-entropy rounds exchange
    before deciding whether any entries need to move.
    """

    def __init__(self, shard: int, host: str) -> None:
        self.shard = shard
        self.host = host
        self.log = EpochLog()
        self._segments: dict[int, set[int]] = {}
        self._by_sequence: dict[int, PublishedTransaction] = {}
        self._checksum = 0
        self._segment_checksums: dict[int, int] = {}
        #: Value of the store's anti-entropy clock when this replica last
        #: took part in a round; the store's health() reports the age.
        self.last_anti_entropy_round = 0

    def add(self, entry: PublishedTransaction, segment: int) -> bool:
        """Store one entry; returns False when it was already held."""
        held = self._segments.setdefault(segment, set())
        if entry.sequence in held:
            return False
        held.add(entry.sequence)
        self._by_sequence[entry.sequence] = entry
        self.log.add(entry)
        digest = mix64(entry.sequence + _SEQUENCE_SALT)
        self._checksum ^= digest
        self._segment_checksums[segment] = (
            self._segment_checksums.get(segment, 0) ^ digest
        )
        return True

    def __len__(self) -> int:
        return len(self.log)

    def sequences(self, segment: int) -> set[int]:
        return set(self._segments.get(segment, ()))

    def segments(self) -> list[int]:
        return sorted(self._segments)

    def entry_for(self, sequence: int) -> Optional[PublishedTransaction]:
        return self._by_sequence.get(sequence)

    def holds(self, sequence: int) -> bool:
        return sequence in self._by_sequence

    def epoch_vector(self) -> dict[int, tuple[int, int]]:
        """``{segment: (entry count, max sequence)}`` — the full per-shard
        vector the anti-entropy rounds used to ship; kept for inspection,
        superseded on the wire by the compact clocks below."""
        return {
            segment: (len(held), max(held))
            for segment, held in sorted(self._segments.items())
            if held
        }

    def clock(self) -> CompactClock:
        """Constant-size summary of everything this replica holds.  Unlike
        ``(count, max sequence)``, the checksum detects interior holes: two
        replicas with the same count and max but different sequence sets
        get different clocks."""
        return CompactClock(
            count=len(self._by_sequence),
            checksum=self._checksum,
            latest=max(self._by_sequence, default=-1),
        )

    def segment_clock(self, segment: int) -> CompactClock:
        held = self._segments.get(segment, ())
        return CompactClock(
            count=len(held),
            checksum=self._segment_checksums.get(segment, 0),
            latest=max(held, default=-1),
        )


class DistributedUpdateStore:
    """Sharded, replicated archive with the :class:`UpdateStore` interface."""

    def __init__(
        self,
        network: Network,
        *,
        shard_count: int = 4,
        replication_factor: int = 2,
        write_quorum: Optional[int] = None,
        read_quorum: int = 1,
        segment_size: int = 8,
        ring_points: int = 32,
    ) -> None:
        if replication_factor < 1:
            raise ConfigurationError("replication_factor must be >= 1")
        if segment_size < 1:
            raise ConfigurationError("segment_size must be >= 1")
        if write_quorum is None:
            write_quorum = replication_factor // 2 + 1
        if not 1 <= write_quorum <= replication_factor:
            raise ConfigurationError(
                f"write_quorum must lie in [1, replication_factor], got {write_quorum}"
            )
        if not 1 <= read_quorum <= replication_factor:
            raise ConfigurationError(
                f"read_quorum must lie in [1, replication_factor], got {read_quorum}"
            )
        self._network = network
        self._ring = ConsistentHashRing(shard_count, ring_points)
        self._replication_factor = replication_factor
        self._write_quorum = write_quorum
        self._read_quorum = read_quorum
        self._segment_size = segment_size
        self._replicas: dict[int, list[ShardReplica]] = {}
        #: Coordinator-side routing metadata: which sequences were assigned
        #: to each shard (what a complete replica of the shard must hold),
        #: and which transaction ids were ever archived (exact duplicate
        #: detection must not depend on which replicas are reachable).
        self._shard_sequences: dict[int, set[int]] = {}
        self._ids: set[str] = set()
        self._next_sequence = 0
        self._latest_epoch = 0
        self._degraded_writes = 0
        self._re_replications = 0
        self._anti_entropy_rounds = 0
        #: Monotone per-shard-pass clock; replicas record its value when they
        #: take part in a round, and health() reports each replica's age.
        self._anti_entropy_clock = 0
        self._entries_transferred = 0
        self._obs = network.obs
        network.subscribe(self._on_connectivity)

    # -- knobs -------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return self._ring.shard_count

    @property
    def replication_factor(self) -> int:
        return self._replication_factor

    @property
    def write_quorum(self) -> int:
        return self._write_quorum

    @property
    def read_quorum(self) -> int:
        return self._read_quorum

    @property
    def segment_size(self) -> int:
        return self._segment_size

    # -- placement ---------------------------------------------------------------
    def _segment_of(self, epoch: int) -> int:
        return (max(epoch, 1) - 1) // self._segment_size

    def shard_of_epoch(self, epoch: int) -> int:
        return self._ring.shard_for(self._segment_of(epoch))

    @staticmethod
    def _rank(shard: int, peer: str) -> int:
        return _hash(f"replica:{shard}:{peer}")

    def _reachable(self, replica: ShardReplica) -> bool:
        return self._network.is_online(replica.host)

    def _replica_set(self, shard: int) -> list[ShardReplica]:
        """The shard's replicas, created on first use among online peers."""
        replicas = self._replicas.get(shard)
        if replicas:
            return replicas
        candidates = sorted(self._network.online_peers(), key=lambda p: self._rank(shard, p))
        if not candidates:
            candidates = sorted(self._network.peers(), key=lambda p: self._rank(shard, p))
        hosts = candidates[: self._replication_factor]
        replicas = [ShardReplica(shard, host) for host in hosts]
        self._replicas[shard] = replicas
        return replicas

    def host_shards(self, peer: str) -> list[int]:
        """Shards with a replica hosted on ``peer`` (inspection aid)."""
        return sorted(
            shard
            for shard, replicas in self._replicas.items()
            if any(replica.host == peer for replica in replicas)
        )

    def replica_hosts(self, shard: int) -> list[str]:
        return [replica.host for replica in self._replicas.get(shard, [])]

    # -- churn handling ----------------------------------------------------------
    def _on_connectivity(self, event: ConnectivityEvent) -> None:
        if event.online:
            self._handle_reconnect(event.peer)
        else:
            self._handle_disconnect(event.peer)

    def _handle_disconnect(self, peer: str) -> None:
        """Restore the replication factor of every shard the peer hosted."""
        for shard, replicas in self._replicas.items():
            if any(replica.host == peer for replica in replicas):
                self._repair_shard(shard)

    def _handle_reconnect(self, peer: str) -> None:
        """Catch the returning peer's replicas up, then rebalance.

        Shards the peer hosts run an anti-entropy round (back-filling what
        its replicas missed while offline); every shard is then repaired, so
        replica sets that were created while part of the network was offline
        grow back to the replication factor as capacity returns.
        """
        for shard in sorted(self._replicas):
            if any(replica.host == peer for replica in self._replicas[shard]):
                self._anti_entropy_shard(shard)
            self._repair_shard(shard)

    def _is_complete(self, shard: int, replica: ShardReplica) -> bool:
        assigned = self._shard_sequences.get(shard, set())
        return all(replica.holds(sequence) for sequence in assigned)

    def _repair_shard(self, shard: int) -> None:
        """Re-replicate from surviving copies until enough replicas are online."""
        replicas = self._replicas.get(shard)
        if not replicas:
            return
        online = [replica for replica in replicas if self._reachable(replica)]
        target = min(self._replication_factor, len(self._network.online_peers()))
        if len(online) >= target:
            self._prune_shard(shard)
            return
        donor = max(online, key=len, default=None)
        if donor is None:
            # Every holder is offline: nothing to copy from. The data is not
            # lost — the offline replicas keep their logs — but the shard is
            # unreachable until one of them reconnects.
            return
        hosts = {replica.host for replica in replicas}
        candidates = sorted(
            self._network.online_peers() - hosts,
            key=lambda peer: self._rank(shard, peer),
        )
        for peer in candidates[: target - len(online)]:
            replica = ShardReplica(shard, peer)
            for segment in donor.segments():
                for sequence in sorted(donor.sequences(segment)):
                    entry = donor.entry_for(sequence)
                    if entry is not None and replica.add(entry, segment):
                        self._entries_transferred += 1
            # A freshly copied replica is as caught-up as a round would make it.
            replica.last_anti_entropy_round = self._anti_entropy_clock
            replicas.append(replica)
            self._re_replications += 1
        self._prune_shard(shard)

    def _prune_shard(self, shard: int) -> None:
        """Trim surplus replicas once enough complete online copies exist.

        Only replicas whose every entry is already held by the kept set are
        dropped, so pruning can never reduce any transaction's copy count
        below the replication factor.
        """
        replicas = self._replicas.get(shard, [])
        if len(replicas) <= self._replication_factor:
            return
        complete_online = [
            replica
            for replica in replicas
            if self._reachable(replica) and self._is_complete(shard, replica)
        ]
        if len(complete_online) < self._replication_factor:
            return
        keep = sorted(
            complete_online, key=lambda replica: self._rank(shard, replica.host)
        )[: self._replication_factor]
        self._replicas[shard] = keep

    # -- anti-entropy ------------------------------------------------------------
    def _anti_entropy_shard(self, shard: int) -> int:
        """One gossip round among the shard's reachable replicas.

        Replicas first exchange whole-replica compact clocks (24 bytes each
        — the reconciliation subsystem's epoch-clock payload, replacing the
        full per-shard epoch vectors this round used to ship); only when
        those disagree do they compare per-segment clocks, and only segments
        whose clocks disagree exchange actual entries.  The checksums also
        catch same-count/same-max divergence (interior holes) that the old
        ``(count, max)`` vectors were blind to.  Returns the number of
        entries transferred.
        """
        self._anti_entropy_clock += 1
        replicas = [
            replica
            for replica in self._replicas.get(shard, [])
            if self._reachable(replica)
        ]
        for replica in replicas:
            replica.last_anti_entropy_round = self._anti_entropy_clock
        if len(replicas) < 2:
            return 0
        clocks = [replica.clock() for replica in replicas]
        if all(clock.agrees_with(clocks[0]) for clock in clocks[1:]):
            return 0
        transferred = 0
        segments = sorted({
            segment for replica in replicas for segment in replica.segments()
        })
        for segment in segments:
            segment_clocks = [replica.segment_clock(segment) for replica in replicas]
            if all(clock.agrees_with(segment_clocks[0]) for clock in segment_clocks[1:]):
                continue
            union: dict[int, PublishedTransaction] = {}
            for replica in replicas:
                for sequence in replica.sequences(segment):
                    entry = replica.entry_for(sequence)
                    if entry is not None:
                        union[sequence] = entry
            for replica in replicas:
                missing = set(union) - replica.sequences(segment)
                for sequence in sorted(missing):
                    if replica.add(union[sequence], segment):
                        transferred += 1
        self._entries_transferred += transferred
        return transferred

    def anti_entropy(self) -> int:
        """Run a gossip round over every shard; returns entries transferred."""
        self._anti_entropy_rounds += 1
        return sum(
            self._anti_entropy_shard(shard) for shard in sorted(self._replicas)
        )

    # -- publication -------------------------------------------------------------
    def archive(
        self, transactions: Iterable[Transaction], epoch: int, publisher: str
    ) -> list[PublishedTransaction]:
        """Archive a batch, writing every entry to all reachable shard replicas.

        The batch is validated as a whole before any replica is touched, so
        publication stays atomic.  Fewer than ``write_quorum`` acks is a
        degraded (but successful) write; zero reachable replicas raises
        :class:`~repro.errors.QuorumError`.
        """
        batch = list(transactions)
        validate_publication_batch(
            batch, epoch, publisher, self._latest_epoch, self._ids.__contains__
        )
        segment = self._segment_of(epoch)
        shard = self._ring.shard_for(segment)
        metrics = self._obs.metrics
        with self._obs.span(
            "store.quorum_write", shard=shard, epoch=epoch, publisher=publisher
        ):
            replicas = self._replica_set(shard)
            if sum(1 for replica in replicas if self._reachable(replica)) < min(
                self._replication_factor, len(self._network.online_peers())
            ):
                self._repair_shard(shard)
                replicas = self._replicas[shard]
            archived = []
            for transaction in batch:
                stamped = transaction.with_epoch(epoch)
                entry = PublishedTransaction(
                    transaction=stamped,
                    epoch=epoch,
                    sequence=self._next_sequence,
                    publisher=publisher,
                )
                acks = 0
                for replica in replicas:
                    if self._reachable(replica) and replica.add(entry, segment):
                        acks += 1
                if acks == 0:
                    raise QuorumError(
                        f"no replica of shard {shard} is reachable; cannot archive "
                        f"transaction {transaction.txn_id!r}"
                    )
                metrics.counter_add("store.quorum.writes", 1)
                if acks < self._write_quorum:
                    self._degraded_writes += 1
                    metrics.counter_add("store.quorum.degraded_writes", 1)
                self._next_sequence += 1
                self._latest_epoch = max(self._latest_epoch, epoch)
                self._shard_sequences.setdefault(shard, set()).add(entry.sequence)
                self._ids.add(transaction.txn_id)
                archived.append(entry)
        return archived

    # -- quorum reads ------------------------------------------------------------
    def _read_shard(
        self,
        shard: int,
        epoch: int = -1,
        exclude_publisher: Optional[str] = None,
    ) -> list[PublishedTransaction]:
        """Quorum read of one shard's entries published after ``epoch``."""
        replicas = self._replicas.get(shard, [])
        if not replicas:
            return []
        reachable = [replica for replica in replicas if self._reachable(replica)]
        if not reachable:
            raise QuorumError(
                f"shard {shard} has no reachable replica "
                f"(hosts: {sorted(replica.host for replica in replicas)})"
            )
        with self._obs.span("store.quorum_read", shard=shard):
            self._obs.metrics.counter_add("store.quorum.reads", 1)
            # Read the most complete replicas first so a freshly re-added
            # (still catching-up) quorum member cannot shadow a complete one.
            reachable.sort(
                key=lambda replica: (-len(replica), self._rank(shard, replica.host))
            )
            merged: dict[int, PublishedTransaction] = {}
            for replica in reachable[: self._read_quorum]:
                for entry in replica.log.since(epoch, exclude_publisher):
                    merged[entry.sequence] = entry
        return list(merged.values())

    def _read_all_shards(
        self, epoch: int = -1, exclude_publisher: Optional[str] = None
    ) -> list[PublishedTransaction]:
        entries: list[PublishedTransaction] = []
        for shard in sorted(self._replicas):
            entries.extend(self._read_shard(shard, epoch, exclude_publisher))
        entries.sort(key=lambda entry: entry.sequence)
        return entries

    # -- UpdateStore interface ---------------------------------------------------
    def __len__(self) -> int:
        return self._next_sequence

    def all_entries(self) -> list[PublishedTransaction]:
        return self._read_all_shards()

    def transactions(self) -> list[Transaction]:
        return [entry.transaction for entry in self._read_all_shards()]

    def entry(self, txn_id: str) -> PublishedTransaction:
        if txn_id not in self._ids:
            raise PublicationError(f"transaction {txn_id!r} was never published")
        for shard in sorted(self._replicas):
            for replica in self._replicas[shard]:
                if not self._reachable(replica):
                    continue
                found = replica.log.get(txn_id)
                if found is not None:
                    return found
        raise QuorumError(
            f"transaction {txn_id!r} is archived but every replica holding it "
            "is offline"
        )

    def contains(self, txn_id: str) -> bool:
        """Was the transaction ever archived?  (Exact, like the centralized
        store — independent of which replicas are currently reachable.)"""
        return txn_id in self._ids

    def retrievable(self, txn_id: str) -> bool:
        """Is the transaction's data reachable on some online replica now?"""
        return any(
            self._reachable(replica) and txn_id in replica.log
            for replicas in self._replicas.values()
            for replica in replicas
        )

    def published_since(
        self, epoch: int, exclude_publisher: Optional[str] = None
    ) -> list[PublishedTransaction]:
        """Quorum read of everything published strictly after ``epoch``."""
        return self._read_all_shards(epoch, exclude_publisher)

    def published_by(self, publisher: str) -> list[PublishedTransaction]:
        entries: dict[int, PublishedTransaction] = {}
        for shard in sorted(self._replicas):
            replicas = [
                replica
                for replica in self._replicas[shard]
                if self._reachable(replica)
            ]
            replicas.sort(
                key=lambda replica: (-len(replica), self._rank(shard, replica.host))
            )
            for replica in replicas[: self._read_quorum]:
                for entry in replica.log.by_publisher(publisher):
                    entries[entry.sequence] = entry
        return [entries[sequence] for sequence in sorted(entries)]

    def latest_epoch(self) -> int:
        return self._latest_epoch

    def antecedents_map(self) -> dict[str, frozenset[str]]:
        return {
            entry.txn_id: entry.transaction.antecedents
            for entry in self._read_all_shards()
        }

    # -- introspection -----------------------------------------------------------
    def under_replicated(self) -> dict[int, list[int]]:
        """``{shard: [sequences]}`` held by fewer copies than the target.

        The target is ``min(replication_factor, registered peers)``; offline
        holders count (their logs persist), so this measures true redundancy,
        not reachability.
        """
        target = min(self._replication_factor, len(self._network.peers()))
        problems: dict[int, list[int]] = {}
        for shard, assigned in self._shard_sequences.items():
            replicas = self._replicas.get(shard, [])
            short = [
                sequence
                for sequence in sorted(assigned)
                if sum(1 for replica in replicas if replica.entry_for(sequence)) < target
            ]
            if short:
                problems[shard] = short
        return problems

    def health(self) -> dict:
        """Shard/replica health counters for reports and benchmarks."""
        per_shard = []
        for shard in sorted(self._replicas):
            replicas = self._replicas[shard]
            per_shard.append(
                {
                    "shard": shard,
                    "replicas": len(replicas),
                    "online_replicas": sum(
                        1 for replica in replicas if self._reachable(replica)
                    ),
                    "entries": len(self._shard_sequences.get(shard, ())),
                    "hosts": sorted(replica.host for replica in replicas),
                    # How many shard anti-entropy passes ago each replica
                    # last took part in a round (0 = current).
                    "anti_entropy_age": {
                        replica.host: (
                            self._anti_entropy_clock - replica.last_anti_entropy_round
                        )
                        for replica in sorted(replicas, key=lambda r: r.host)
                    },
                }
            )
        under = self.under_replicated()
        metrics = self._obs.metrics
        metrics.gauge_set("store.replication.repairs", self._re_replications)
        metrics.gauge_set("store.anti_entropy.rounds", self._anti_entropy_rounds)
        metrics.gauge_set(
            "store.anti_entropy.entries_transferred", self._entries_transferred
        )
        metrics.gauge_set("store.shards.under_replicated", len(under))
        return {
            "backend": "distributed",
            "shards": self.shard_count,
            "active_shards": len(self._replicas),
            "replication_factor": self._replication_factor,
            "write_quorum": self._write_quorum,
            "read_quorum": self._read_quorum,
            "segment_size": self._segment_size,
            "transactions": self._next_sequence,
            "degraded_writes": self._degraded_writes,
            "re_replications": self._re_replications,
            "anti_entropy_rounds": self._anti_entropy_rounds,
            "entries_transferred": self._entries_transferred,
            "under_replicated_shards": len(under),
            "per_shard": per_shard,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedUpdateStore({self._next_sequence} transactions, "
            f"{self.shard_count} shards x{self._replication_factor}, "
            f"epoch {self._latest_epoch})"
        )


def store_from_config(network: Network, store_config) -> object:
    """Build the archive selected by a :class:`~repro.config.StoreConfig`.

    ``backend="centralized"`` (the default) returns the plain
    :class:`UpdateStore`; ``backend="distributed"`` wires a
    :class:`DistributedUpdateStore` to the given network.
    """
    backend = getattr(store_config, "backend", "centralized")
    if backend == "distributed":
        return DistributedUpdateStore(
            network,
            shard_count=store_config.shard_count,
            replication_factor=store_config.replication_factor,
            write_quorum=store_config.write_quorum,
            read_quorum=store_config.read_quorum,
            segment_size=store_config.segment_size,
        )
    if backend != "centralized":
        raise ConfigurationError(
            f"unknown store backend {backend!r}; expected 'centralized' or 'distributed'"
        )
    return UpdateStore()
