"""Set-reconciliation sketches and compact epoch clocks.

Two reconnecting peers want to learn "which published transactions does one
of us hold that the other lacks" without shipping their whole logs.  This
module provides the data structures for that exchange:

* :func:`transaction_digest` / :func:`entry_digest` — process-stable 64-bit
  content digests (built on :mod:`repro.core.hashing`; independent of
  ``PYTHONHASHSEED``, so both ends of a session agree on every digest).
* :class:`CountingBloomSketch` — a counting Bloom filter over digests.  One
  side ships its filter; the other sends back every entry whose digest the
  filter does not contain.  False positives make the transfer incomplete
  (never wrong), which the protocol detects by checksum and repairs by
  retrying with a larger, differently-seeded filter.
* :class:`IBLTSketch` — an invertible Bloom lookup table.  Subtracting two
  peers' tables cancels the shared elements, and peeling the difference
  *decodes* the exact symmetric difference when it fits the table's
  capacity; overflow raises :class:`~repro.errors.SketchError` and the
  protocol grows the table and retries.
* :class:`PeerClock` — a compact per-publisher epoch vector ("I have seen
  publisher P through epoch e"), used in session challenges.
* :class:`CompactClock` — a constant-size (count, checksum, latest) summary
  of an entry set.  Two equal clocks mean equal sets (64-bit-whp), which
  short-circuits sessions between already-converged peers at the cost of
  one tiny message each way; the distributed store's anti-entropy uses the
  same payload instead of shipping full per-shard epoch vectors.

Sketch sizes are deliberate: a Bloom filter is ~8 counters per element of
capacity, an IBLT ~1.5 cells of 14 bytes per element of *difference* — so
the bytes a session moves scale with the diff, not the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from ..core.hashing import (
    MASK64,
    canonical_encode,
    encoded_size,
    mix64,
    stable_hash,
    stable_text_hash,
    xor_checksum,
)
from ..errors import SketchError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..core.transactions import Transaction
    from .store import PublishedTransaction

__all__ = [
    "CompactClock",
    "CountingBloomSketch",
    "IBLTSketch",
    "PeerClock",
    "entry_digest",
    "entry_wire_size",
    "transaction_digest",
]


# -- content digests -----------------------------------------------------------------

def transaction_digest(transaction: "Transaction", seed: int = 0) -> int:
    """Process-stable 64-bit content digest of a transaction (see
    :meth:`repro.core.transactions.Transaction.content_digest`)."""
    return transaction.content_digest(seed=seed)


def entry_payload(entry: "PublishedTransaction") -> tuple:
    """Canonical value identifying one archived entry (epoch and sequence
    included: the same transaction republished at a different position is a
    different archive entry)."""
    return (
        "entry",
        entry.publisher,
        entry.epoch,
        entry.sequence,
        entry.transaction.txn_id,
        entry.transaction.content_payload(),
    )


def entry_digest(entry: "PublishedTransaction", seed: int = 0) -> int:
    """Process-stable 64-bit digest of one archived entry."""
    return stable_hash(entry_payload(entry), seed=seed)


def entry_wire_size(entry: "PublishedTransaction") -> int:
    """Bytes needed to ship one entry: the size of its canonical encoding."""
    return len(canonical_encode(entry_payload(entry)))


# -- per-publisher epoch clocks ------------------------------------------------------

@dataclass
class PeerClock:
    """Compact per-publisher epoch vector: publisher name -> highest epoch
    at which this side holds one of that publisher's transactions."""

    versions: dict[str, int] = field(default_factory=dict)

    def observe(self, publisher: str, epoch: int) -> None:
        if epoch > self.versions.get(publisher, -1):
            self.versions[publisher] = epoch

    def merge(self, other: "PeerClock") -> "PeerClock":
        merged = dict(self.versions)
        for publisher, epoch in other.versions.items():
            if epoch > merged.get(publisher, -1):
                merged[publisher] = epoch
        return PeerClock(merged)

    def dominates(self, other: "PeerClock") -> bool:
        """Does this clock know at least as much as ``other`` everywhere?"""
        return all(
            self.versions.get(publisher, -1) >= epoch
            for publisher, epoch in other.versions.items()
        )

    def behind(self, other: "PeerClock") -> list[str]:
        """Publishers for which ``other`` has seen newer epochs than us."""
        return sorted(
            publisher
            for publisher, epoch in other.versions.items()
            if self.versions.get(publisher, -1) < epoch
        )

    def items(self) -> tuple[tuple[str, int], ...]:
        return tuple(sorted(self.versions.items()))

    def byte_size(self) -> int:
        # name bytes + one varint-ish epoch slot per publisher
        return sum(len(name.encode("utf-8")) + 8 for name in self.versions)


@dataclass(frozen=True)
class CompactClock:
    """Constant-size summary of an entry set: element count, XOR-of-digests
    checksum, and the latest epoch (or sequence) held.

    Equal clocks mean equal sets with 64-bit-whp confidence, so exchanging
    two of these (24 bytes each) is enough to skip a full session between
    converged peers — and enough for the distributed store's anti-entropy to
    notice divergence without shipping per-segment epoch vectors.
    """

    count: int
    checksum: int
    latest: int

    BYTE_SIZE = 24  # three 64-bit slots

    def byte_size(self) -> int:
        return self.BYTE_SIZE

    def agrees_with(self, other: "CompactClock") -> bool:
        return self.count == other.count and self.checksum == other.checksum

    @staticmethod
    def of_digests(digests: Iterable[int], latest: int = -1) -> "CompactClock":
        materialized = list(digests)
        return CompactClock(
            count=len(materialized),
            checksum=xor_checksum(materialized),
            latest=latest,
        )


# -- counting Bloom filter -----------------------------------------------------------

class CountingBloomSketch:
    """Counting Bloom filter over 64-bit digests.

    ``capacity`` is the number of elements the filter is sized for (about 8
    counters and 5 probes per element, giving a ~2% false-positive rate at
    capacity).  The ``seed`` salts the probe sequence so a retry with a new
    seed sees an independent set of false positives.  Counters make the
    filter subtractable (``remove``), which the protocol does not strictly
    need but keeps the two sketch types interchangeable.
    """

    PROBES = 5
    COUNTERS_PER_ELEMENT = 8

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise SketchError("bloom sketch capacity must be positive")
        self.capacity = capacity
        self.seed = seed & MASK64
        self._cells = [0] * max(16, capacity * self.COUNTERS_PER_ELEMENT)
        self._count = 0

    def _probes(self, key: int) -> Iterator[int]:
        size = len(self._cells)
        h1 = mix64(key ^ self.seed)
        h2 = mix64(h1 ^ 0x9E3779B97F4A7C15) | 1
        for i in range(self.PROBES):
            yield (h1 + i * h2) % size

    def add(self, key: int) -> None:
        for index in self._probes(key):
            self._cells[index] += 1
        self._count += 1

    def remove(self, key: int) -> None:
        for index in self._probes(key):
            if self._cells[index] <= 0:
                raise SketchError("bloom counter underflow: key was never added")
            self._cells[index] -= 1
        self._count -= 1

    def __contains__(self, key: int) -> bool:
        return all(self._cells[index] > 0 for index in self._probes(key))

    def __len__(self) -> int:
        return self._count

    def byte_size(self) -> int:
        # one byte per counter (saturating-at-255 on a real wire)
        return len(self._cells)

    def missing_from(self, candidates: Iterable[tuple[int, object]]) -> list[object]:
        """Of ``(digest, payload)`` candidates, the payloads whose digest is
        definitely not in the filter (false positives are skipped — the
        caller detects incompleteness by checksum and retries)."""
        return [payload for digest, payload in candidates if digest not in self]


# -- invertible Bloom lookup table ---------------------------------------------------

class IBLTSketch:
    """Invertible Bloom lookup table over 64-bit digests.

    Sized at ~1.5 cells per element of expected *difference*; 3 probes per
    key.  ``subtract`` cancels elements present in both tables, and
    :meth:`decode` peels the remainder into the two one-sided difference
    sets, raising :class:`SketchError` when the difference exceeded what the
    table can peel.
    """

    PROBES = 3
    CELLS_PER_ELEMENT = 1.5
    CELL_BYTES = 14  # 2-byte signed count + 8-byte key XOR + 4-byte check XOR

    def __init__(self, capacity: int, seed: int = 0, _cells: Optional[int] = None) -> None:
        if capacity < 1:
            raise SketchError("iblt capacity must be positive")
        self.capacity = capacity
        self.seed = seed & MASK64
        if _cells is not None:
            size = _cells
        else:
            size = max(self.PROBES, int(capacity * self.CELLS_PER_ELEMENT + 0.5))
            size += (-size) % self.PROBES  # equal partition per probe
        self._counts = [0] * size
        self._keys = [0] * size
        self._checks = [0] * size

    def _check_of(self, key: int) -> int:
        return mix64(key ^ self.seed ^ 0xC2B2AE3D27D4EB4F) & 0xFFFFFFFF

    def _probes(self, key: int) -> list[int]:
        # One probe per equal partition of the table, each independently
        # hashed.  Double hashing ((h1 + i*h2) % size) is tempting but wrong
        # here: whenever h2 shares a factor with the composite table size,
        # probe triples collapse onto small sublattices, and at realistic
        # loads two keys land on the *same* cell set often enough to stall
        # the peeling decoder.  Partitioning keeps cells distinct by
        # construction and probe choices independent.
        span = len(self._counts) // self.PROBES
        return [
            index * span
            + mix64(key ^ self.seed ^ ((index + 1) * 0x9E3779B97F4A7C15 & MASK64)) % span
            for index in range(self.PROBES)
        ]

    def _apply(self, key: int, delta: int) -> None:
        check = self._check_of(key)
        for index in self._probes(key):
            self._counts[index] += delta
            self._keys[index] ^= key
            self._checks[index] ^= check

    def add(self, key: int) -> None:
        self._apply(key & MASK64, +1)

    def remove(self, key: int) -> None:
        self._apply(key & MASK64, -1)

    def subtract(self, other: "IBLTSketch") -> "IBLTSketch":
        """Cell-wise difference ``self - other``; both tables must share
        size and seed (i.e. come from the same session attempt)."""
        if len(self._counts) != len(other._counts) or self.seed != other.seed:
            raise SketchError("cannot subtract sketches of different shapes or seeds")
        result = IBLTSketch(self.capacity, seed=self.seed, _cells=len(self._counts))
        result._counts = [a - b for a, b in zip(self._counts, other._counts)]
        result._keys = [a ^ b for a, b in zip(self._keys, other._keys)]
        result._checks = [a ^ b for a, b in zip(self._checks, other._checks)]
        return result

    def decode(self) -> tuple[set[int], set[int]]:
        """Peel a subtracted table into ``(only_left, only_right)`` digest
        sets, where *left* is the minuend of :meth:`subtract`.

        Raises :class:`SketchError` when peeling stalls (difference larger
        than capacity, or a check-hash collision) — the caller grows the
        table and retries, then falls back to cursor replay.
        """
        counts = list(self._counts)
        keys = list(self._keys)
        checks = list(self._checks)
        only_left: set[int] = set()
        only_right: set[int] = set()

        def pure(index: int) -> bool:
            return counts[index] in (1, -1) and checks[index] == self._check_of(keys[index])

        frontier = [index for index in range(len(counts)) if pure(index)]
        while frontier:
            index = frontier.pop()
            if not pure(index):
                continue
            key = keys[index]
            side = only_left if counts[index] == 1 else only_right
            delta = -counts[index]
            side.add(key)
            check = self._check_of(key)
            for cell in self._probes(key):
                counts[cell] += delta
                keys[cell] ^= key
                checks[cell] ^= check
                if pure(cell):
                    frontier.append(cell)
        if any(counts) or any(keys) or any(checks):
            raise SketchError(
                f"iblt decode stalled (capacity {self.capacity}, "
                f"{sum(1 for c in counts if c)} undrained cells)"
            )
        return only_left, only_right

    def byte_size(self) -> int:
        return len(self._counts) * self.CELL_BYTES


# re-exported for convenience: the reconcile layer treats this module as the
# home of everything hash-related.
__all__ += ["canonical_encode", "encoded_size", "stable_hash", "stable_text_hash", "xor_checksum", "mix64"]
