"""Peer-to-peer substrate for the published-update archive.

Figure 1 of the paper stores published transactions in a peer-to-peer
distributed database so that a peer's updates remain retrievable after it
disconnects.  This package provides that substrate:

* :mod:`repro.p2p.store` — the centralized, append-only archive of published
  transactions, ordered by epoch and indexed for the reconcile hot path,
* :mod:`repro.p2p.network` — per-peer connectivity (peers are intermittently
  connected; offline peers can neither publish nor reconcile), with
  listeners, a bounded availability trace, and churn statistics,
* :mod:`repro.p2p.replication` — replica placement of published transactions
  onto the currently online peers, availability accounting under churn, and
  re-replication after holders disconnect,
* :mod:`repro.p2p.distributed` — the sharded, k-way-replicated distributed
  archive: consistent hashing of epoch-ordered log segments onto peer-hosted
  shard servers, quorum reads/writes, re-replication, and gossip-based
  catch-up for reconnecting peers,
* :mod:`repro.p2p.sketch` — process-stable content digests, counting Bloom
  filters, invertible Bloom lookup tables and compact epoch clocks for
  set reconciliation,
* :mod:`repro.p2p.reconcile` — the challenge → sketch → diff → batch
  reconciliation protocol with per-message byte accounting and cursor-replay
  fallback,
* :mod:`repro.p2p.gossip` — the fanout-f epidemic anti-entropy scheduler
  that spreads published transactions peer-to-peer.
"""

from .distributed import (
    ConsistentHashRing,
    DistributedUpdateStore,
    ShardReplica,
    store_from_config,
)
from .gossip import GossipCoordinator, GossipReport
from .network import ConnectivityEvent, MessageEvent, Network
from .reconcile import (
    EntryCache,
    ReconcileConfig,
    ReconcileStats,
    SessionResult,
    SetReconciler,
    StoreView,
    cursor_transfer_bytes,
)
from .replication import ReplicaPlacement, ReplicationManager
from .sketch import (
    CompactClock,
    CountingBloomSketch,
    IBLTSketch,
    PeerClock,
    entry_digest,
    entry_wire_size,
    transaction_digest,
)
from .store import EpochLog, PublishedTransaction, UpdateStore

__all__ = [
    "CompactClock",
    "ConnectivityEvent",
    "ConsistentHashRing",
    "CountingBloomSketch",
    "DistributedUpdateStore",
    "EntryCache",
    "EpochLog",
    "GossipCoordinator",
    "GossipReport",
    "IBLTSketch",
    "MessageEvent",
    "Network",
    "PeerClock",
    "PublishedTransaction",
    "ReconcileConfig",
    "ReconcileStats",
    "ReplicaPlacement",
    "ReplicationManager",
    "SessionResult",
    "SetReconciler",
    "ShardReplica",
    "StoreView",
    "UpdateStore",
    "cursor_transfer_bytes",
    "entry_digest",
    "entry_wire_size",
    "store_from_config",
    "transaction_digest",
]
