"""Simulated peer-to-peer substrate for the published-update archive.

Figure 1 of the paper stores published transactions in a peer-to-peer
distributed database so that a peer's updates remain retrievable after it
disconnects.  This package simulates that substrate:

* :mod:`repro.p2p.store` — the durable, append-only archive of published
  transactions, ordered by epoch,
* :mod:`repro.p2p.network` — per-peer connectivity (peers are intermittently
  connected; offline peers can neither publish nor reconcile),
* :mod:`repro.p2p.replication` — replica placement of published transactions
  onto the currently online peers and availability accounting under churn.
"""

from .network import Network
from .replication import ReplicaPlacement, ReplicationManager
from .store import PublishedTransaction, UpdateStore

__all__ = [
    "Network",
    "PublishedTransaction",
    "ReplicaPlacement",
    "ReplicationManager",
    "UpdateStore",
]
