"""Peer-to-peer substrate for the published-update archive.

Figure 1 of the paper stores published transactions in a peer-to-peer
distributed database so that a peer's updates remain retrievable after it
disconnects.  This package provides that substrate:

* :mod:`repro.p2p.store` — the centralized, append-only archive of published
  transactions, ordered by epoch and indexed for the reconcile hot path,
* :mod:`repro.p2p.network` — per-peer connectivity (peers are intermittently
  connected; offline peers can neither publish nor reconcile), with
  listeners, a bounded availability trace, and churn statistics,
* :mod:`repro.p2p.replication` — replica placement of published transactions
  onto the currently online peers, availability accounting under churn, and
  re-replication after holders disconnect,
* :mod:`repro.p2p.distributed` — the sharded, k-way-replicated distributed
  archive: consistent hashing of epoch-ordered log segments onto peer-hosted
  shard servers, quorum reads/writes, re-replication, and gossip-based
  catch-up for reconnecting peers.
"""

from .distributed import (
    ConsistentHashRing,
    DistributedUpdateStore,
    ShardReplica,
    store_from_config,
)
from .network import ConnectivityEvent, Network
from .replication import ReplicaPlacement, ReplicationManager
from .store import EpochLog, PublishedTransaction, UpdateStore

__all__ = [
    "ConnectivityEvent",
    "ConsistentHashRing",
    "DistributedUpdateStore",
    "EpochLog",
    "Network",
    "PublishedTransaction",
    "ReplicaPlacement",
    "ReplicationManager",
    "ShardReplica",
    "UpdateStore",
    "store_from_config",
]
