"""Command-line front end for the CDSS static analyzer.

Lints network specs and datalog programs without running anything::

    python -m repro.lint network.spec rules.dl
    python -m repro.lint specs/ --json
    python -m repro.lint --figure2

``.dl``/``.datalog`` files are parsed as datalog programs (with
``validate=False`` so every problem is reported, not just the first) and run
through the program analyses: safety (``CDSS001``), stratifiability
(``CDSS002``), arity consistency (``CDSS004``) and SQL compilability
(``CDSS013``).  Everything else is treated as a network spec and gets the
full network analysis on top: chase termination (``CDSS003``), schema and
mapping structure (``CDSS004``–``CDSS007``), topology (``CDSS008``/``009``),
and trust lints (``CDSS010``–``012``).

Directories are walked recursively for ``*.spec``, ``*.dl`` and
``*.datalog`` files.  Exit status is 1 when any file has an error-severity
diagnostic (or, with ``--strict``, any warning), 2 on usage errors, and 0
otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .analysis.diagnostics import DiagnosticReport

PROGRAM_SUFFIXES = (".dl", ".datalog")
SPEC_SUFFIXES = (".spec",)
LINTABLE_SUFFIXES = PROGRAM_SUFFIXES + SPEC_SUFFIXES

FIGURE2_SOURCE = "<FIGURE2_SPEC>"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis for CDSS network specs and datalog programs.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="spec/program files, or directories to walk for *.spec, *.dl, *.datalog",
    )
    parser.add_argument(
        "--figure2",
        action="store_true",
        help="also lint the built-in Figure 2 bioinformatics spec",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one JSON object with per-file diagnostics instead of text",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as fatal (exit 1 on any warning)",
    )
    return parser


def lint_program_text(text: str, source: str) -> DiagnosticReport:
    """Lint datalog program text, downgrading parse failures to CDSS014."""
    from .analysis import analyze_program
    from .analysis import codes
    from .analysis.diagnostics import message_of
    from .datalog.parser import parse_program
    from .errors import ReproError

    try:
        program = parse_program(text, validate=False)
    except ReproError as error:
        report = DiagnosticReport()
        report.add(
            getattr(error, "code", None) or codes.MALFORMED_SPEC,
            message_of(error),
            span=getattr(error, "span", None),
        )
        return report.with_source(source)
    return analyze_program(program, source=source)


def lint_spec_text(text: str, source: str) -> DiagnosticReport:
    """Lint network-spec text (full network analysis)."""
    from .analysis import analyze_network_spec

    return analyze_network_spec(text, source_name=source)


def lint_path(path: Path) -> DiagnosticReport:
    """Lint one file, choosing the analysis by suffix."""
    text = path.read_text(encoding="utf-8")
    if path.suffix in PROGRAM_SUFFIXES:
        return lint_program_text(text, str(path))
    return lint_spec_text(text, str(path))


def collect_targets(paths: Sequence[Path]) -> Tuple[List[Path], List[str]]:
    """Expand files and directories into lintable files, reporting misses."""
    targets: List[Path] = []
    problems: List[str] = []
    for path in paths:
        if path.is_dir():
            found = sorted(
                candidate
                for candidate in path.rglob("*")
                if candidate.is_file() and candidate.suffix in LINTABLE_SUFFIXES
            )
            if not found:
                problems.append(f"{path}: no *.spec, *.dl or *.datalog files found")
            targets.extend(found)
        elif path.is_file():
            targets.append(path)
        else:
            problems.append(f"{path}: no such file or directory")
    return targets, problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.paths and not args.figure2:
        parser.error("nothing to lint: pass at least one path or --figure2")

    targets, problems = collect_targets(args.paths)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 2

    reports: List[Tuple[str, DiagnosticReport]] = []
    for path in targets:
        reports.append((str(path), lint_path(path)))
    if args.figure2:
        from .workloads.bioinformatics import FIGURE2_SPEC

        reports.append((FIGURE2_SOURCE, lint_spec_text(FIGURE2_SPEC, FIGURE2_SOURCE)))

    errors = sum(len(report.errors()) for _, report in reports)
    warnings = sum(len(report.warnings()) for _, report in reports)

    if args.as_json:
        payload = {
            "files": {source: report.to_dict() for source, report in reports},
            "errors": errors,
            "warnings": warnings,
            "ok": errors == 0 and (warnings == 0 or not args.strict),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for _source, report in reports:
            for diagnostic in report:
                print(diagnostic.render())
        checked = len(reports)
        summary = f"{checked} file(s) checked: {errors} error(s), {warnings} warning(s)"
        print(summary)

    if errors:
        return 1
    if warnings and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
