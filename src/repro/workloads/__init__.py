"""Workload construction, demonstration scenarios and reporting.

* :mod:`repro.workloads.bioinformatics` builds the Figure-2 CDSS (the four
  universities sharing protein reference sequences) and generates synthetic
  organism/protein/sequence data at configurable scale,
* :mod:`repro.workloads.scenarios` scripts the five demonstration scenarios
  of Section 4 of the paper and returns structured outcomes,
* :mod:`repro.workloads.generator` produces synthetic update/transaction
  workloads with controllable conflict rates for the scaling benchmarks,
* :mod:`repro.workloads.simulation` generates whole random networks
  (peers, schemas, acyclic mapping graphs, trust policies) from a seed,
  drives random workloads over them and checks differential oracles —
  the engine behind ``python -m repro.simulate``,
* :mod:`repro.workloads.reporting` renders textual views of peers, mappings
  and reconciliation traces (the stand-in for the paper's Java GUI).
"""

from .bioinformatics import (
    BioDataGenerator,
    FIGURE2_SPEC,
    FigureTwoNetwork,
    build_figure2_network,
    SIGMA1_RELATIONS,
    SIGMA2_RELATIONS,
)
from .generator import SyntheticWorkload, WorkloadConfig
from .reporting import render_mappings, render_peer_state, render_reconciliation
from .simulation import (
    CampaignResult,
    OracleFailure,
    RandomWorkload,
    SimulationConfig,
    SimulationResult,
    generate_network,
    run_campaign,
    run_simulation,
)
from .scenarios import (
    ScenarioOutcome,
    run_all_scenarios,
    scenario_1_bidirectional_translation,
    scenario_2_conflict_and_dependent_rejection,
    scenario_3_antecedent_acceptance,
    scenario_4_deferral_and_resolution,
    scenario_5_offline_publisher,
)

__all__ = [
    "BioDataGenerator",
    "CampaignResult",
    "FIGURE2_SPEC",
    "FigureTwoNetwork",
    "OracleFailure",
    "RandomWorkload",
    "SIGMA1_RELATIONS",
    "SIGMA2_RELATIONS",
    "ScenarioOutcome",
    "SimulationConfig",
    "SimulationResult",
    "SyntheticWorkload",
    "WorkloadConfig",
    "build_figure2_network",
    "generate_network",
    "run_campaign",
    "run_simulation",
    "render_mappings",
    "render_peer_state",
    "render_reconciliation",
    "run_all_scenarios",
    "scenario_1_bidirectional_translation",
    "scenario_2_conflict_and_dependent_rejection",
    "scenario_3_antecedent_acceptance",
    "scenario_4_deferral_and_resolution",
    "scenario_5_offline_publisher",
]
