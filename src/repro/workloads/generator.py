"""Synthetic update workload generation for the scaling benchmarks.

The demo paper states that ORCHESTRA "has been tested extensively on small-
to medium-sized networks with update-heavy workloads".  The generator builds
such workloads deterministically: streams of transactions at the Figure-2
peers with a configurable mix of insertions, modifications and deletions and
a controllable conflict rate (fraction of transactions that collide with a
concurrently published transaction on the same key at another peer).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.peer import Peer
from ..core.transactions import Transaction
from ..errors import ConfigurationError
from .bioinformatics import BioDataGenerator, FigureTwoNetwork


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic workload.

    Attributes:
        transactions: Total number of transactions to generate.
        updates_per_transaction: Tuple-level updates per transaction.
        conflict_rate: Fraction of transactions [0, 1] generated as one half
            of a deliberate same-key conflict pair across two peers.
        modify_fraction: Fraction of follow-up transactions that modify
            previously inserted data (creating antecedent dependencies).
        delete_fraction: Fraction of follow-up transactions that delete
            previously inserted data.
        seed: Random seed for reproducibility.
    """

    transactions: int = 100
    updates_per_transaction: int = 3
    conflict_rate: float = 0.0
    modify_fraction: float = 0.2
    delete_fraction: float = 0.1
    seed: int = 13

    def __post_init__(self) -> None:
        if self.transactions < 0:
            raise ConfigurationError("transactions must be non-negative")
        if self.updates_per_transaction < 1:
            raise ConfigurationError("updates_per_transaction must be at least 1")
        for name in ("conflict_rate", "modify_fraction", "delete_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        total = self.modify_fraction + self.delete_fraction
        if total > 1.0:
            raise ConfigurationError(
                "modify_fraction + delete_fraction must not exceed 1, "
                f"got {total}"
            )


@dataclass
class GeneratedTransaction:
    """Bookkeeping for one generated transaction."""

    transaction: Transaction
    peer: str
    kind: str
    conflicts_with: Optional[str] = None


class SyntheticWorkload:
    """Generates and commits a synthetic transaction stream on a network."""

    def __init__(self, network: FigureTwoNetwork, config: Optional[WorkloadConfig] = None) -> None:
        self._network = network
        self._config = config or WorkloadConfig()
        self._random = random.Random(self._config.seed)
        self._data = BioDataGenerator(seed=self._config.seed)
        self._generated: list[GeneratedTransaction] = []
        self._inserted_keys: list[tuple[str, int, int, str]] = []
        self._next_index = 0

    @property
    def config(self) -> WorkloadConfig:
        return self._config

    @property
    def generated(self) -> list[GeneratedTransaction]:
        return list(self._generated)

    # -- generation ------------------------------------------------------------
    def _sigma1_peers(self) -> list[Peer]:
        return [self._network.alaska, self._network.beijing]

    def _fresh_key(self) -> tuple[int, int]:
        self._next_index += 1
        return 1_000 + self._next_index, 5_000 + self._next_index

    def _insert_transaction(self, peer: Peer) -> GeneratedTransaction:
        builder = peer.new_transaction()
        recorded_key: Optional[tuple[str, int, int, str]] = None
        for _ in range(self._config.updates_per_transaction):
            oid, pid = self._fresh_key()
            organism = self._data.organism(self._next_index)
            protein = self._data.protein(self._next_index)
            sequence = self._data.sequence()
            builder.insert("O", (organism, oid))
            builder.insert("P", (protein, pid))
            builder.insert("S", (oid, pid, sequence))
            recorded_key = (peer.name, oid, pid, sequence)
        transaction = peer.commit(builder)
        if recorded_key is not None:
            self._inserted_keys.append(recorded_key)
        return GeneratedTransaction(transaction, peer.name, "insert")

    def _modify_transaction(self, peer: Peer) -> Optional[GeneratedTransaction]:
        candidates = [key for key in self._inserted_keys if key[0] == peer.name]
        if not candidates:
            return None
        _, oid, pid, sequence = self._random.choice(candidates)
        if not peer.instance.contains("S", (oid, pid, sequence)):
            return None
        new_sequence = self._data.sequence()
        transaction = peer.modify("S", (oid, pid, sequence), (oid, pid, new_sequence))
        self._inserted_keys = [
            key if key[1:3] != (oid, pid) or key[0] != peer.name
            else (peer.name, oid, pid, new_sequence)
            for key in self._inserted_keys
        ]
        return GeneratedTransaction(transaction, peer.name, "modify")

    def _delete_transaction(self, peer: Peer) -> Optional[GeneratedTransaction]:
        candidates = [key for key in self._inserted_keys if key[0] == peer.name]
        if not candidates:
            return None
        chosen = self._random.choice(candidates)
        _, oid, pid, sequence = chosen
        if not peer.instance.contains("S", (oid, pid, sequence)):
            return None
        transaction = peer.delete("S", (oid, pid, sequence))
        self._inserted_keys.remove(chosen)
        return GeneratedTransaction(transaction, peer.name, "delete")

    def _conflict_pair(self) -> list[GeneratedTransaction]:
        """Two transactions at different peers asserting different sequences
        for the same (oid, pid) key."""
        alaska, beijing = self._network.alaska, self._network.beijing
        oid, pid = self._fresh_key()
        organism = self._data.organism(self._next_index)
        protein = self._data.protein(self._next_index)
        pair = []
        for peer in (alaska, beijing):
            builder = peer.new_transaction()
            builder.insert("O", (organism, oid))
            builder.insert("P", (protein, pid))
            builder.insert("S", (oid, pid, self._data.sequence()))
            pair.append(GeneratedTransaction(peer.commit(builder), peer.name, "conflict"))
        pair[0].conflicts_with = pair[1].transaction.txn_id
        pair[1].conflicts_with = pair[0].transaction.txn_id
        return pair

    def generate(self) -> list[GeneratedTransaction]:
        """Commit the whole configured workload at the Σ1 peers."""
        produced: list[GeneratedTransaction] = []
        while len(produced) < self._config.transactions:
            roll = self._random.random()
            remaining = self._config.transactions - len(produced)
            if self._config.conflict_rate and roll < self._config.conflict_rate and remaining >= 2:
                produced.extend(self._conflict_pair())
                continue
            peer = self._random.choice(self._sigma1_peers())
            roll = self._random.random()
            generated: Optional[GeneratedTransaction] = None
            if roll < self._config.delete_fraction:
                generated = self._delete_transaction(peer)
            elif roll < self._config.delete_fraction + self._config.modify_fraction:
                generated = self._modify_transaction(peer)
            if generated is None:
                generated = self._insert_transaction(peer)
            produced.append(generated)
        self._generated.extend(produced)
        return produced

    # -- driving the system ----------------------------------------------------------
    def publish_all(self) -> int:
        """Publish every Σ1 peer's pending transactions; returns count published."""
        published = 0
        for peer in self._sigma1_peers():
            outcome = self._network.cdss.publish(peer.name)
            published += len(outcome.published)
        return published

    def reconcile_all(self) -> dict[str, dict[str, int]]:
        """Reconcile every peer and return the per-peer decision summaries."""
        summaries = {}
        for peer in self._network.peers():
            outcome = self._network.cdss.reconcile(peer.name)
            summaries[peer.name] = outcome.result.summary()
        return summaries

    def transaction_stream(self) -> Iterator[Transaction]:
        for generated in self._generated:
            yield generated.transaction
