"""The Figure-2 bioinformatics CDSS and its synthetic data generator.

The demonstration network has four participants sharing protein reference
sequences:

* **Alaska** and **Beijing** use schema Σ1 = { O(org, oid), P(prot, pid),
  S(oid, pid, seq) } — organisms and proteins carry numeric identifiers;
* **Crete** and **Dresden** use schema Σ2 = { OPS(org, prot, seq) } — a single
  denormalised table without identifiers.

Mappings: ``M_A↔B`` and ``M_C↔D`` are identity mappings; ``M_A→C`` joins the
three Σ1 tables into OPS; ``M_C→A`` splits OPS back into the Σ1 tables,
inventing identifiers as labelled nulls.  Alaska, Beijing and Dresden trust
every participant equally, while Crete trusts only Beijing (priority 2) and
Dresden (priority 1).

The whole network is written in the declarative spec language as
:data:`FIGURE2_SPEC` and built with ``CDSS.from_spec``; the schema helpers
below remain for code that works with Σ1/Σ2 directly.

Because the real SHARQ/pPOD datasets are not available, the
:class:`BioDataGenerator` produces deterministic synthetic organisms, proteins
and sequences with the same schema shapes and configurable scale; DESIGN.md
documents this substitution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..config import SystemConfig
from ..core.peer import Peer
from ..core.schema import PeerSchema
from ..core.system import CDSS
from ..core.trust import TrustPolicy

#: Σ1 relations with their attributes (Alaska and Beijing).
SIGMA1_RELATIONS = {
    "O": ["org", "oid"],
    "P": ["prot", "pid"],
    "S": ["oid", "pid", "seq"],
}
#: Keys used for conflict detection: organisms are keyed by name, proteins by
#: name, and sequences by the (oid, pid) pair they describe.
SIGMA1_KEYS = {"O": ["org"], "P": ["prot"], "S": ["oid", "pid"]}

#: Σ2 relation (Crete and Dresden): one denormalised table keyed by
#: (organism, protein).
SIGMA2_RELATIONS = {"OPS": ["org", "prot", "seq"]}
SIGMA2_KEYS = {"OPS": ["org", "prot"]}

PEER_ALASKA = "Alaska"
PEER_BEIJING = "Beijing"
PEER_CRETE = "Crete"
PEER_DRESDEN = "Dresden"

#: The Figure-2 network in the declarative spec language: four peers over
#: two schemas, identity mappings within each schema group, and the
#: join/split mappings across them.  ``build_figure2_network`` feeds this
#: text straight into :meth:`repro.CDSS.from_spec`.
FIGURE2_SPEC = """
network figure2-bioinformatics

peer Alaska schema Sigma1
  relation O(org, oid) key(org)
  relation P(prot, pid) key(prot)
  relation S(oid, pid, seq) key(oid, pid)
  trust * 1

peer Beijing schema Sigma1
  relation O(org, oid) key(org)
  relation P(prot, pid) key(prot)
  relation S(oid, pid, seq) key(oid, pid)
  trust * 1

peer Crete schema Sigma2
  relation OPS(org, prot, seq) key(org, prot)
  trust Beijing 2
  trust Dresden 1
  trust * 0

peer Dresden schema Sigma2
  relation OPS(org, prot, seq) key(org, prot)
  trust * 1

# Identity mappings between the peers sharing a schema (both directions).
mapping [M_AB_O] @Beijing.O(x0, x1) :- @Alaska.O(x0, x1).
mapping [M_AB_P] @Beijing.P(x0, x1) :- @Alaska.P(x0, x1).
mapping [M_AB_S] @Beijing.S(x0, x1, x2) :- @Alaska.S(x0, x1, x2).
mapping [M_BA_O] @Alaska.O(x0, x1) :- @Beijing.O(x0, x1).
mapping [M_BA_P] @Alaska.P(x0, x1) :- @Beijing.P(x0, x1).
mapping [M_BA_S] @Alaska.S(x0, x1, x2) :- @Beijing.S(x0, x1, x2).
mapping [M_CD_OPS] @Dresden.OPS(x0, x1, x2) :- @Crete.OPS(x0, x1, x2).
mapping [M_DC_OPS] @Crete.OPS(x0, x1, x2) :- @Dresden.OPS(x0, x1, x2).

# M_A->C joins the three Sigma1 tables into OPS.
mapping [M_AC] @Crete.OPS(org, prot, seq) :-
    @Alaska.O(org, oid), @Alaska.P(prot, pid), @Alaska.S(oid, pid, seq).

# M_C->A splits OPS back into Sigma1 (oid/pid become labelled nulls).
mapping [M_CA] @Alaska.O(org, oid), @Alaska.P(prot, pid), @Alaska.S(oid, pid, seq) :-
    @Crete.OPS(org, prot, seq).
"""

_ORGANISMS = [
    "E. coli",
    "S. cerevisiae",
    "D. melanogaster",
    "C. elegans",
    "H. sapiens",
    "M. musculus",
    "A. thaliana",
    "P. falciparum",
    "T. gondii",
    "X. laevis",
]

_PROTEINS = [
    "lacZ",
    "recA",
    "gal4",
    "actin",
    "BRCA1",
    "p53",
    "tubulin",
    "histone-H3",
    "kinesin",
    "myosin",
    "hsp70",
    "ubiquitin",
]


def sigma1_schema(name: str = "Sigma1") -> PeerSchema:
    """The Σ1 peer schema used by Alaska and Beijing."""
    return PeerSchema.build(name, SIGMA1_RELATIONS, SIGMA1_KEYS)


def sigma2_schema(name: str = "Sigma2") -> PeerSchema:
    """The Σ2 peer schema used by Crete and Dresden."""
    return PeerSchema.build(name, SIGMA2_RELATIONS, SIGMA2_KEYS)


@dataclass
class FigureTwoNetwork:
    """The constructed Figure-2 CDSS plus direct handles to its four peers."""

    cdss: CDSS
    alaska: Peer
    beijing: Peer
    crete: Peer
    dresden: Peer

    def peers(self) -> list[Peer]:
        return [self.alaska, self.beijing, self.crete, self.dresden]

    def peer_names(self) -> list[str]:
        return [peer.name for peer in self.peers()]


def crete_trust_policy() -> TrustPolicy:
    """Crete trusts only Beijing (preferred) and Dresden; everyone else is distrusted."""
    return TrustPolicy.trust_only(
        PEER_CRETE, {PEER_BEIJING: 2, PEER_DRESDEN: 1}, others=0
    )


def build_figure2_network(
    config: Optional[SystemConfig] = None, storage_factory=None
) -> FigureTwoNetwork:
    """Construct the four-peer CDSS of Figure 2 from its declarative spec.

    ``storage_factory`` (``peer name -> storage backend``) lets every peer's
    local instance live in a non-default backend, e.g. SQLite.
    """
    cdss = CDSS.from_spec(FIGURE2_SPEC, config=config, storage_factory=storage_factory)
    return FigureTwoNetwork(
        cdss,
        cdss.peer(PEER_ALASKA),
        cdss.peer(PEER_BEIJING),
        cdss.peer(PEER_CRETE),
        cdss.peer(PEER_DRESDEN),
    )


@dataclass
class BioDataGenerator:
    """Deterministic synthetic generator of organisms, proteins and sequences.

    Attributes:
        seed: Random seed; the same seed always yields the same data.
        sequence_length: Length of generated reference sequences.
    """

    seed: int = 7
    sequence_length: int = 12
    _random: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._random = random.Random(self.seed)

    def organism(self, index: int) -> str:
        base = _ORGANISMS[index % len(_ORGANISMS)]
        suffix = index // len(_ORGANISMS)
        return base if suffix == 0 else f"{base} strain-{suffix}"

    def protein(self, index: int) -> str:
        base = _PROTEINS[index % len(_PROTEINS)]
        suffix = index // len(_PROTEINS)
        return base if suffix == 0 else f"{base}-{suffix}"

    def sequence(self) -> str:
        return "".join(self._random.choice("ACGT") for _ in range(self.sequence_length))

    # -- bulk loading ------------------------------------------------------------
    def sigma1_rows(
        self, organisms: int, proteins: int, sequences_per_pair: float = 0.25
    ) -> dict[str, list[tuple]]:
        """Generate Σ1 rows: organisms, proteins, and a sample of sequences."""
        o_rows = [(self.organism(i), i + 1) for i in range(organisms)]
        p_rows = [(self.protein(j), 100 + j) for j in range(proteins)]
        s_rows = []
        for org_name, oid in o_rows:
            for prot_name, pid in p_rows:
                if self._random.random() < sequences_per_pair:
                    s_rows.append((oid, pid, self.sequence()))
        return {"O": o_rows, "P": p_rows, "S": s_rows}

    def sigma2_rows(self, pairs: int) -> dict[str, list[tuple]]:
        """Generate Σ2 rows: (organism, protein, sequence) triples."""
        rows = []
        for index in range(pairs):
            org = self.organism(index % max(len(_ORGANISMS), 1))
            prot = self.protein(index)
            rows.append((org, prot, self.sequence()))
        return {"OPS": rows}

    def load_sigma1(self, peer: Peer, organisms: int, proteins: int,
                    sequences_per_pair: float = 0.25) -> int:
        """Load generated Σ1 data directly into a peer's instance (pre-CDSS data)."""
        rows = self.sigma1_rows(organisms, proteins, sequences_per_pair)
        loaded = 0
        for relation, tuples in rows.items():
            loaded += peer.instance.insert_many(relation, tuples)
        return loaded

    def load_sigma2(self, peer: Peer, pairs: int) -> int:
        """Load generated Σ2 data directly into a peer's instance (pre-CDSS data)."""
        rows = self.sigma2_rows(pairs)
        loaded = 0
        for relation, tuples in rows.items():
            loaded += peer.instance.insert_many(relation, tuples)
        return loaded

    def insertion_transactions(
        self, peer: Peer, count: int, start_index: int = 0
    ) -> list:
        """Commit ``count`` single-insert transactions of fresh Σ1/Σ2 data at a peer."""
        committed = []
        sigma1 = peer.schema.has_relation("O")
        for offset in range(count):
            index = start_index + offset
            if sigma1:
                builder = peer.new_transaction()
                oid = 10_000 + index
                pid = 20_000 + index
                builder.insert("O", (self.organism(index), oid))
                builder.insert("P", (self.protein(index), pid))
                builder.insert("S", (oid, pid, self.sequence()))
                committed.append(peer.commit(builder))
            else:
                committed.append(
                    peer.insert("OPS", (self.organism(index), self.protein(index), self.sequence()))
                )
        return committed
