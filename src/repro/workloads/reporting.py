"""Textual views of the CDSS state (the stand-in for the Java GUI of Figure 3).

The demonstration shows, per peer: the current local instance, the mappings
connecting it to other peers, and the updates (original and translated) that
were applied during reconciliation.  These functions render the same
information as plain text so that the examples and EXPERIMENTS.md can show
exactly what a demo attendee would have seen.
"""

from __future__ import annotations

from typing import Iterable

from ..core.peer import Peer
from ..core.system import CDSS, ReconcileOutcome
from ..core.tuples import render_tuple
from ..reconcile.decisions import ReconciliationState


def render_peer_state(peer: Peer) -> str:
    """Render one peer's local instance, relation by relation."""
    lines = [f"=== {peer.name} ({'online' if peer.online else 'offline'}) ==="]
    lines.append(f"schema: {peer.schema}")
    for relation in peer.schema:
        rows = sorted(peer.instance.scan(relation.name), key=repr)
        lines.append(f"  {relation.name} ({len(rows)} tuples)")
        for values in rows:
            lines.append(f"    {render_tuple(values)}")
    return "\n".join(lines)


def render_mappings(cdss: CDSS) -> str:
    """Render every schema mapping registered in the system."""
    lines = ["=== Schema mappings ==="]
    for mapping in cdss.catalog.mappings():
        lines.append(f"  {mapping}")
    return "\n".join(lines)


def render_reconciliation(outcome: ReconcileOutcome, state: ReconciliationState) -> str:
    """Render the result of one reconciliation run, including open conflicts."""
    lines = [
        f"=== Reconciliation at {outcome.peer} (epoch {outcome.epoch}) ===",
        f"candidates considered: {outcome.candidates_considered}",
        f"accepted: {sorted(outcome.accepted)}",
        f"rejected: {sorted(outcome.rejected)}",
        f"deferred: {sorted(outcome.deferred)}",
        f"pending:  {sorted(outcome.pending)}",
    ]
    open_conflicts = state.open_conflicts()
    if open_conflicts:
        lines.append("open conflicts awaiting the administrator:")
        for conflict in open_conflicts:
            members = ", ".join(sorted(conflict.txn_ids))
            lines.append(f"  #{conflict.conflict_id} priority={conflict.priority}: {members}")
    return "\n".join(lines)


def render_system_overview(cdss: CDSS) -> str:
    """Render the whole system: statistics, mappings and every peer's state."""
    lines = ["=== CDSS overview ==="]
    for key, value in cdss.statistics().items():
        lines.append(f"  {key}: {value}")
    lines.append(render_mappings(cdss))
    for peer in cdss.catalog.peers():
        lines.append(render_peer_state(peer))
    return "\n".join(lines)


def render_decision_table(states: Iterable[ReconciliationState]) -> str:
    """A compact per-peer table of decision counts (used by the benchmarks)."""
    lines = ["peer        accepted rejected deferred pending open_conflicts"]
    for state in states:
        summary = state.summary()
        lines.append(
            f"{state.peer:<12}"
            f"{summary['accepted']:>8} {summary['rejected']:>8} "
            f"{summary['deferred']:>8} {summary['pending']:>7} {summary['open_conflicts']:>14}"
        )
    return "\n".join(lines)
