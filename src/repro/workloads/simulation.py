"""Randomized CDSS simulation with differential oracles.

The demo paper claims ORCHESTRA "has been tested extensively on small- to
medium-sized networks with update-heavy workloads", but the seed reproduction
only ever exercised the one hand-wired Figure-2 topology.  This module turns
that single scenario into a *scenario engine*:

* :func:`generate_network` — a seeded random network generator: random peer
  counts, schemas drawn from a shared signature pool, acyclic tgd mapping
  graphs (copy/join/split mappings with optional existential variables) and
  random table-based trust policies.  Every network is emitted through the
  declarative :class:`~repro.api.spec.NetworkSpec` layer, so it round-trips
  ``to_spec``/``from_spec`` by construction (and the simulator checks it).
* :class:`RandomWorkload` — a seeded driver producing insert/modify/delete/
  conflict command streams over any generated network, plus an offline
  schedule (peers drop out for an epoch and catch up later).
* Differential oracles, in the conditioning/possible-worlds spirit of
  checking an optimized engine against an exhaustively recomputable
  semantics.  After **every** epoch the simulator asserts:

  1. ``incremental-vs-recompute`` — the exchange engine's incrementally
     maintained database equals a from-scratch
     :func:`~repro.datalog.provenance_eval.evaluate_with_provenance`
     recomputation over the published base facts;
  2. ``provenance-vs-dred`` — a mirror engine using DRed deletion (no
     provenance) reaches the same database on the same transaction stream;
  3. ``sync-vs-manual`` — ``cdss.sync()`` orchestration leaves every peer
     instance identical to a hand-rolled publish/reconcile loop built from
     the imperative primitives;
  4. ``memory-vs-sqlite`` — a replica whose peers live in SQLite reaches
     instances identical to the in-memory replica;
  5. ``distributed-vs-centralized`` — a replica archiving into the sharded,
     replicated :class:`~repro.p2p.distributed.DistributedUpdateStore`
     produces sync reports and peer instances identical to the centralized
     archive, round for round, under the same churn schedule;
  6. ``replica-durability`` — every transaction archived in the distributed
     store is held by at least ``min(replication_factor, peers)`` shard
     replicas after churn settles, so losing any ``k - 1`` replicas of a
     shard cannot lose published data;
  7. ``sketch-vs-cursor`` — a replica whose peers catch up via gossip
     sketch reconciliation (:mod:`repro.p2p.gossip`) produces sync reports
     and peer instances identical to scalar-cursor catch-up, round for
     round, under the same churn schedule — sketch decode failures and
     cursor fallbacks may cost bytes, never correctness.

Because the oracles run after every epoch, the epoch reported by a failing
oracle is already minimal: it is the first epoch at which the divergence is
observable for that seed.

Entry points: :func:`run_simulation` (one seed), :func:`run_campaign` (a
batch of seeds), and the ``python -m repro.simulate`` CLI for fuzz
campaigns.  A 25-seed slice runs in the test suite
(``tests/workloads/test_simulation.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..api.builder import NetworkBuilder
from ..api.spec import NetworkSpec, parse_network_spec
from ..config import ExchangeConfig, StoreConfig, SystemConfig
from ..core.system import CDSS
from ..datalog.ast import Atom, Variable
from ..core.mapping import Mapping
from ..errors import ConfigurationError, ReproError
from ..exchange.engine import ExchangeEngine
from ..storage.sqlite_backend import SQLiteInstance

@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one randomized simulation run.

    The defaults are sized for the fast pytest slice (a few peers, a few
    epochs); fuzz campaigns scale them up via the CLI.
    """

    epochs: int = 4
    min_peers: int = 2
    max_peers: int = 4
    #: Size of the shared pool of relation signatures peers draw from.
    signature_pool: int = 4
    max_relations_per_peer: int = 3
    min_arity: int = 2
    max_arity: int = 4
    #: Probability that a relation signature declares a proper key (a strict
    #: prefix of its attributes) rather than the whole tuple.
    keyed_probability: float = 0.75
    #: Probability of a mapping edge between each forward-ordered peer pair
    #: (every peer additionally gets at least one incoming edge).
    mapping_density: float = 0.5
    #: Probability that a generated mapping joins two source relations.
    join_probability: float = 0.25
    #: Probability that a generated mapping has a multi-atom (split) head.
    split_probability: float = 0.2
    #: Probability that a head position holds a fresh existential variable
    #: (a labelled null after skolemisation) instead of a body variable.
    existential_probability: float = 0.2
    #: Probability that a copy mapping between same-signature relations is an
    #: exact identity (maximizing data flow) rather than randomly wired.
    identity_probability: float = 0.5
    transactions_per_epoch: tuple[int, int] = (2, 6)
    modify_fraction: float = 0.2
    delete_fraction: float = 0.15
    conflict_fraction: float = 0.15
    #: Probability that one random peer sits out an epoch offline.
    offline_probability: float = 0.2
    #: Values are drawn from this many distinct constants per column kind;
    #: key columns use a halved domain so same-key conflicts actually occur.
    domain_size: int = 6
    max_sync_rounds: int = 30
    #: Provenance representation of the primary replica's exchange engine:
    #: ``"circuit"`` (hash-consed DAG, default) or ``"expanded"`` (per-tuple
    #: polynomial expansion, the ablation the DAG replaces).  The nightly
    #: fuzz job runs both.
    provenance_mode: str = "circuit"
    #: Per-epoch sample bound for the dag-vs-expanded oracle (0 disables);
    #: the oracle compares DAG evaluation with expanded-polynomial evaluation
    #: for sampled derived tuples under several semirings.
    provenance_oracle_samples: int = 25
    #: Expansion budget for the oracle's polynomial side; sampled tuples
    #: whose expansion exceeds it are skipped (the DAG is the whole point
    #: for those).
    provenance_oracle_max_monomials: int = 4096
    #: Update-store backend of the primary replica: ``"centralized"`` (the
    #: single in-memory archive) or ``"distributed"`` (sharded + replicated
    #: across the peers).  The nightly fuzz job runs both.
    store_backend: str = "centralized"
    #: Shards / replication factor of whichever replica runs the distributed
    #: store (see ``distributed_oracle``).
    store_shards: int = 3
    store_replication: int = 2
    #: Maintain a mirror replica on the *other* store backend and assert
    #: per-epoch that its reconcile outcomes, final instances, and replica
    #: redundancy match the primary (the distributed-vs-centralized oracle).
    distributed_oracle: bool = True
    #: Catch-up strategy of the primary replica: ``"cursor"`` (scalar-cursor
    #: replay from the archive) or ``"gossip"`` (epidemic sketch
    #: reconciliation).  The nightly fuzz job runs both.
    sync_mode: str = "cursor"
    #: Sketch algorithm of whichever replica runs gossip sync
    #: (see ``sketch_oracle``): ``"iblt"`` or ``"bloom"``.
    sync_sketch: str = "iblt"
    #: Maintain a mirror replica on the *other* sync mode (same store
    #: backend) and assert per-epoch that its reconcile outcomes and final
    #: instances match the primary (the sketch-vs-cursor oracle).
    sketch_oracle: bool = True
    #: Sync scheduler of the primary replica: ``"serial"`` (the round-robin
    #: loop) or ``"async"`` (the pipelined runtime of
    #: :mod:`repro.api.async_sync`).  An async primary automatically gains a
    #: serial mirror replica on the same backend and sync mode, backing the
    #: concurrent-vs-serial oracle: identical final instances, reconcile
    #: decisions, and open conflicts on identical seeds.
    sync_runtime: str = "serial"
    #: Rule execution backend of the primary replica's exchange engine:
    #: ``"python"`` (tuple-at-a-time closure executor) or ``"sql"``
    #: (set-at-a-time SQLite pushdown).  A mirror engine always runs on the
    #: *other* backend, backing the sql-vs-python oracle: identical derived
    #: instances and provenance polynomials per epoch.  The nightly fuzz job
    #: runs both orientations.
    execution_backend: str = "python"

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError("epochs must be at least 1")
        if not 2 <= self.min_peers <= self.max_peers:
            raise ConfigurationError("need 2 <= min_peers <= max_peers")
        if self.signature_pool < 1 or self.max_relations_per_peer < 1:
            raise ConfigurationError("signature_pool and max_relations_per_peer must be >= 1")
        if not 1 <= self.min_arity <= self.max_arity:
            raise ConfigurationError("need 1 <= min_arity <= max_arity")
        low, high = self.transactions_per_epoch
        if not 1 <= low <= high:
            raise ConfigurationError("transactions_per_epoch must be an increasing range from >= 1")
        for name in (
            "keyed_probability", "mapping_density", "join_probability",
            "split_probability", "existential_probability", "identity_probability",
            "modify_fraction", "delete_fraction", "conflict_fraction",
            "offline_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        # conflict_fraction is rolled independently of the modify/delete
        # split, so only the latter two share a probability budget.
        total = self.modify_fraction + self.delete_fraction
        if total > 1.0:
            raise ConfigurationError(
                f"modify_fraction + delete_fraction must not exceed 1, got {total}"
            )
        if self.domain_size < 2:
            raise ConfigurationError("domain_size must be at least 2")
        if self.max_sync_rounds < 1:
            raise ConfigurationError("max_sync_rounds must be at least 1")
        if self.provenance_mode not in ("circuit", "expanded"):
            raise ConfigurationError(
                f"provenance_mode must be 'circuit' or 'expanded', got {self.provenance_mode!r}"
            )
        if self.provenance_oracle_samples < 0:
            raise ConfigurationError("provenance_oracle_samples must be >= 0")
        if self.provenance_oracle_max_monomials < 1:
            raise ConfigurationError("provenance_oracle_max_monomials must be >= 1")
        if self.store_backend not in ("centralized", "distributed"):
            raise ConfigurationError(
                f"store_backend must be 'centralized' or 'distributed', "
                f"got {self.store_backend!r}"
            )
        if self.store_shards < 1 or self.store_replication < 1:
            raise ConfigurationError("store_shards and store_replication must be >= 1")
        if self.sync_mode not in ("cursor", "gossip"):
            raise ConfigurationError(
                f"sync_mode must be 'cursor' or 'gossip', got {self.sync_mode!r}"
            )
        if self.sync_sketch not in ("iblt", "bloom"):
            raise ConfigurationError(
                f"sync_sketch must be 'iblt' or 'bloom', got {self.sync_sketch!r}"
            )
        if self.sync_runtime not in ("serial", "async"):
            raise ConfigurationError(
                f"sync_runtime must be 'serial' or 'async', got {self.sync_runtime!r}"
            )
        if self.execution_backend not in ("python", "sql"):
            raise ConfigurationError(
                f"execution_backend must be 'python' or 'sql', got {self.execution_backend!r}"
            )


# ---------------------------------------------------------------------------
# Network generation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Signature:
    """One relation shape shared across peers (name, attributes, key prefix)."""

    name: str
    attributes: tuple[str, ...]
    key_length: int  # == len(attributes) when the whole tuple is the key

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def has_proper_key(self) -> bool:
        return self.key_length < self.arity


def _signature_pool(rng: random.Random, config: SimulationConfig) -> list[_Signature]:
    pool = []
    for index in range(config.signature_pool):
        arity = rng.randint(config.min_arity, config.max_arity)
        attributes = tuple(f"a{position}" for position in range(arity))
        if arity > 1 and rng.random() < config.keyed_probability:
            key_length = rng.randint(1, arity - 1)
        else:
            key_length = arity
        pool.append(_Signature(f"R{index}", attributes, key_length))
    return pool


def _generate_mapping(
    rng: random.Random,
    config: SimulationConfig,
    mapping_id: str,
    source: str,
    target: str,
    source_sigs: Sequence[_Signature],
    target_sigs: Sequence[_Signature],
) -> Mapping:
    """One random copy/join/split tgd from ``source``'s schema to ``target``'s."""
    fresh = iter(range(10_000))

    def body_atom(signature: _Signature, tag: int) -> Atom:
        return Atom(
            signature.name,
            tuple(Variable(f"v{tag}_{k}") for k in range(signature.arity)),
        )

    body = [body_atom(rng.choice(list(source_sigs)), 0)]
    if len(body[0].terms) and rng.random() < config.join_probability:
        second = body_atom(rng.choice(list(source_sigs)), 1)
        # Share one variable so the body is a genuine join.
        terms = list(second.terms)
        terms[rng.randrange(len(terms))] = rng.choice(body[0].terms)
        body.append(Atom(second.predicate, tuple(terms)))

    pool = [term for atom in body for term in atom.terms]

    def head_atom(signature: _Signature) -> Atom:
        terms = []
        for _ in range(signature.arity):
            if rng.random() < config.existential_probability:
                terms.append(Variable(f"e{next(fresh)}"))
            else:
                terms.append(rng.choice(pool))
        return Atom(signature.name, tuple(terms))

    # Exact identity when source and target share the body signature: this is
    # the high-data-flow case (and the one that produces cross-peer conflicts).
    shared = [sig for sig in target_sigs if sig.name == body[0].predicate]
    if (
        len(body) == 1
        and shared
        and rng.random() < config.identity_probability
    ):
        heads = [Atom(body[0].predicate, body[0].terms)]
    else:
        head_sigs = [rng.choice(list(target_sigs))]
        if len(target_sigs) > 1 and rng.random() < config.split_probability:
            others = [sig for sig in target_sigs if sig.name != head_sigs[0].name]
            if others:
                head_sigs.append(rng.choice(others))
        heads = [head_atom(signature) for signature in head_sigs]

    return Mapping(mapping_id, source, target, tuple(body), tuple(heads))


def generate_network(
    seed_or_rng: int | random.Random, config: Optional[SimulationConfig] = None
) -> NetworkSpec:
    """Generate a random, validated :class:`NetworkSpec` from a seed.

    Peers draw their relations from a shared pool of signatures (so schema
    overlap — and therefore data flow and key conflicts — is common), the
    mapping graph is acyclic (edges only go from lower- to higher-indexed
    peers, each non-root peer gets at least one incoming edge), and trust
    policies are random priority tables.  The same seed always yields the
    same spec, and every generated spec round-trips through its textual
    form.
    """
    config = config or SimulationConfig()
    rng = seed_or_rng if isinstance(seed_or_rng, random.Random) else random.Random(seed_or_rng)

    pool = _signature_pool(rng, config)
    peer_count = rng.randint(config.min_peers, config.max_peers)
    names = [f"Peer{index}" for index in range(peer_count)]

    builder = NetworkBuilder(f"simulated-{peer_count}p")
    peer_sigs: dict[str, list[_Signature]] = {}
    for name in names:
        count = rng.randint(1, min(config.max_relations_per_peer, len(pool)))
        signatures = sorted(rng.sample(pool, count), key=lambda sig: sig.name)
        peer_sigs[name] = signatures
        peer = builder.peer(name)
        for signature in signatures:
            key = signature.attributes[: signature.key_length] if signature.has_proper_key else ()
            peer.relation(signature.name, *signature.attributes, key=key)
        # Random table-based trust: all-equal, a priority table, or
        # trust-only-some (default 0 distrusts everyone unlisted).
        roll = rng.random()
        if roll < 0.45:
            pass  # trust everyone equally (implicit default priority 1)
        else:
            others = [other for other in names if other != name]
            listed = rng.sample(others, rng.randint(1, len(others)))
            for other in listed:
                peer.trust(other, rng.randint(1, 3))
            # Only record a non-default priority: 1 is the implicit default,
            # so omitting it keeps generated specs canonical (and lets the
            # to_spec round-trip oracle compare dicts exactly).
            if roll < 0.75 and rng.randint(0, 1) == 0:
                peer.trust_default(0)

    mapping_counter = 0
    for target_index in range(1, peer_count):
        sources = list(range(target_index))
        chosen = {rng.choice(sources)}
        for source_index in sources:
            if rng.random() < config.mapping_density:
                chosen.add(source_index)
        for source_index in sorted(chosen):
            mapping_counter += 1
            builder.mapping(
                _generate_mapping(
                    rng,
                    config,
                    f"M{mapping_counter}",
                    names[source_index],
                    names[target_index],
                    peer_sigs[names[source_index]],
                    peer_sigs[names[target_index]],
                )
            )
    return builder.spec()


# ---------------------------------------------------------------------------
# Random workload driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadCommand:
    """One transaction to commit, as pure data (replayable on any replica)."""

    txn_id: str
    peer: str
    kind: str  # "insert" | "modify" | "delete" | "conflict"
    relation: str
    values: tuple
    old_values: Optional[tuple] = None


class RandomWorkload:
    """Seeded stream of insert/modify/delete/conflict commands over a spec.

    The driver owns all randomness and bookkeeping (which tuples it has
    inserted where), so the same command list can be applied to any number
    of network replicas and every replica sees byte-identical transactions.
    """

    def __init__(
        self, spec: NetworkSpec, config: SimulationConfig, rng: random.Random
    ) -> None:
        self._spec = spec
        self._config = config
        self._rng = rng
        self._counter = 0
        #: Tuples this driver inserted and believes still present locally.
        self._alive: list[tuple[str, str, tuple]] = []  # (peer, relation, values)
        self._relations: dict[str, list[tuple[str, int, int]]] = {}
        for peer in spec.peers.values():
            entries = []
            for relation, attributes in peer.relations.items():
                key = peer.keys.get(relation, attributes)
                entries.append((relation, len(attributes), len(key)))
            self._relations[peer.name] = entries
        #: (peer_a, peer_b, relation, arity, key_length) sites where two
        #: peers share a properly keyed relation — deliberate conflict pairs.
        self._conflict_sites: list[tuple[str, str, str, int, int]] = []
        names = list(spec.peers)
        for index, left in enumerate(names):
            for right in names[index + 1:]:
                for relation, arity, key_length in self._relations[left]:
                    if key_length >= arity:
                        continue
                    for other, other_arity, other_key in self._relations[right]:
                        if other == relation and other_arity == arity and other_key == key_length:
                            self._conflict_sites.append(
                                (left, right, relation, arity, key_length)
                            )

    # -- value generation ---------------------------------------------------
    def _key_value(self) -> object:
        return self._rng.randrange(max(2, self._config.domain_size // 2))

    def _payload_value(self) -> object:
        value = self._rng.randrange(self._config.domain_size)
        return f"s{value}" if self._rng.random() < 0.5 else value

    def _fresh_tuple(self, arity: int, key_length: int) -> tuple:
        return tuple(
            self._key_value() if position < key_length else self._payload_value()
            for position in range(arity)
        )

    def _next_txn_id(self, peer: str) -> str:
        self._counter += 1
        return f"{peer}-sim{self._counter}"

    # -- command kinds ------------------------------------------------------
    def _insert_command(self, peer: str) -> WorkloadCommand:
        relation, arity, key_length = self._rng.choice(self._relations[peer])
        values = self._fresh_tuple(arity, key_length)
        self._alive.append((peer, relation, values))
        return WorkloadCommand(self._next_txn_id(peer), peer, "insert", relation, values)

    def _modify_command(self, peer: str) -> Optional[WorkloadCommand]:
        candidates = [entry for entry in self._alive if entry[0] == peer]
        if not candidates:
            return None
        entry = self._rng.choice(candidates)
        _, relation, old_values = entry
        arity = len(old_values)
        key_length = next(
            key for name, _, key in self._relations[peer] if name == relation
        )
        if key_length >= arity:
            # Whole-tuple key: a modification may rewrite any position.
            key_length = 0
        for _ in range(4):
            new_values = tuple(
                old_values[position] if position < key_length else self._payload_value()
                for position in range(arity)
            )
            if new_values != old_values:
                break
        else:
            return None
        self._alive.remove(entry)
        self._alive.append((peer, relation, new_values))
        return WorkloadCommand(
            self._next_txn_id(peer), peer, "modify", relation, new_values, old_values
        )

    def _delete_command(self, peer: str) -> Optional[WorkloadCommand]:
        candidates = [entry for entry in self._alive if entry[0] == peer]
        if not candidates:
            return None
        entry = self._rng.choice(candidates)
        self._alive.remove(entry)
        _, relation, values = entry
        return WorkloadCommand(self._next_txn_id(peer), peer, "delete", relation, values)

    def _conflict_commands(self) -> list[WorkloadCommand]:
        """Two peers assert different payloads for the same key."""
        if not self._conflict_sites:
            return []
        left, right, relation, arity, key_length = self._rng.choice(self._conflict_sites)
        key = tuple(self._key_value() for _ in range(key_length))
        commands = []
        payloads: set[tuple] = set()
        for peer in (left, right):
            for _ in range(4):
                rest = tuple(self._payload_value() for _ in range(arity - key_length))
                if rest not in payloads:
                    break
            else:
                # Tiny payload spaces can keep colliding; force a distinct
                # payload so the pair is a genuine conflict ("altN" never
                # collides with generated values).
                rest = rest[:-1] + (f"alt{self._counter}",)
            payloads.add(rest)
            values = key + rest
            self._alive.append((peer, relation, values))
            commands.append(
                WorkloadCommand(self._next_txn_id(peer), peer, "conflict", relation, values)
            )
        return commands

    # -- epoch stream -------------------------------------------------------
    def epoch_commands(self) -> list[WorkloadCommand]:
        """The transaction commands of one workload epoch."""
        low, high = self._config.transactions_per_epoch
        budget = self._rng.randint(low, high)
        commands: list[WorkloadCommand] = []
        names = list(self._spec.peers)
        while len(commands) < budget:
            roll = self._rng.random()
            remaining = budget - len(commands)
            if roll < self._config.conflict_fraction and remaining >= 2:
                pair = self._conflict_commands()
                if pair:
                    commands.extend(pair)
                    continue
            peer = self._rng.choice(names)
            roll = self._rng.random()
            command: Optional[WorkloadCommand] = None
            if roll < self._config.delete_fraction:
                command = self._delete_command(peer)
            elif roll < self._config.delete_fraction + self._config.modify_fraction:
                command = self._modify_command(peer)
            if command is None:
                command = self._insert_command(peer)
            commands.append(command)
        return commands

    def offline_peer(self, last_epoch: bool) -> Optional[str]:
        """Optionally pick one peer to sit this epoch out (never the last)."""
        if not last_epoch and self._rng.random() < self._config.offline_probability:
            return self._rng.choice(list(self._spec.peers))
        return None


# ---------------------------------------------------------------------------
# Differential oracles
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OracleFailure:
    """One differential-oracle mismatch, pinned to its seed and epoch.

    ``epoch`` is already minimal: oracles run after every epoch, so this is
    the first epoch at which the divergence is observable for ``seed``.
    """

    seed: int
    epoch: int
    oracle: str
    detail: str

    def describe(self) -> str:
        return (
            f"seed {self.seed}: oracle {self.oracle!r} failed at epoch "
            f"{self.epoch} (minimal): {self.detail}"
        )


def _database_relations(database) -> dict[str, frozenset]:
    return {predicate: database.relation(predicate) for predicate in database.predicates()}


def _diff_relation_maps(
    left: dict[str, frozenset], right: dict[str, frozenset],
    left_name: str, right_name: str, samples: int = 3,
) -> Optional[str]:
    """Human-readable first differences between two relation maps, or None."""
    if left == right:
        return None
    parts = []
    for predicate in sorted(set(left) | set(right)):
        only_left = left.get(predicate, frozenset()) - right.get(predicate, frozenset())
        only_right = right.get(predicate, frozenset()) - left.get(predicate, frozenset())
        if only_left:
            shown = sorted(only_left, key=repr)[:samples]
            parts.append(f"{predicate}: {len(only_left)} only in {left_name}, e.g. {shown}")
        if only_right:
            shown = sorted(only_right, key=repr)[:samples]
            parts.append(f"{predicate}: {len(only_right)} only in {right_name}, e.g. {shown}")
    return "; ".join(parts[:6])


def _snapshot_all(cdss: CDSS) -> dict[str, dict[str, frozenset]]:
    return {name: dict(cdss.peer_snapshot(name)) for name in cdss.catalog.peer_names()}


def _diff_snapshots(
    left: dict[str, dict[str, frozenset]],
    right: dict[str, dict[str, frozenset]],
    left_name: str, right_name: str,
) -> Optional[str]:
    parts = []
    for peer in sorted(set(left) | set(right)):
        diff = _diff_relation_maps(
            left.get(peer, {}), right.get(peer, {}), left_name, right_name
        )
        if diff:
            parts.append(f"peer {peer}: {diff}")
    return "; ".join(parts[:4]) or None


# ---------------------------------------------------------------------------
# The simulation itself
# ---------------------------------------------------------------------------

@dataclass
class SimulationResult:
    """Outcome of running one seeded network through the full oracle suite."""

    seed: int
    peers: int
    mappings: int
    epochs_run: int
    transactions: int
    oracle_checks: int
    failures: list[OracleFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "peers": self.peers,
            "mappings": self.mappings,
            "epochs_run": self.epochs_run,
            "transactions": self.transactions,
            "oracle_checks": self.oracle_checks,
            "ok": self.ok,
            "failures": [failure.describe() for failure in self.failures],
        }


@dataclass
class CampaignResult:
    """Aggregate of a batch of seeded simulation runs."""

    results: list[SimulationResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> list[OracleFailure]:
        return [failure for result in self.results for failure in result.failures]

    def to_dict(self) -> dict:
        return {
            "seeds": len(self.results),
            "ok": self.ok,
            "transactions": sum(result.transactions for result in self.results),
            "oracle_checks": sum(result.oracle_checks for result in self.results),
            "results": [result.to_dict() for result in self.results],
        }


class SimulationRun:
    """One generated network, its replicas, and the per-epoch oracle loop."""

    def __init__(self, seed: int, config: Optional[SimulationConfig] = None) -> None:
        self.seed = seed
        self.config = config or SimulationConfig()
        rng = random.Random(seed)
        self.spec = generate_network(rng, self.config)
        self.workload = RandomWorkload(self.spec, self.config, rng)
        self.failures: list[OracleFailure] = []
        self.oracle_checks = 0
        self.transactions = 0
        self.epochs_run = 0

        #: Dedicated RNG for oracle sampling: deterministic per seed, but
        #: isolated from the workload stream so sampling config cannot
        #: perturb the generated networks or transactions.
        self._oracle_rng = random.Random(f"{seed}-dag-oracle")
        self.primary = CDSS.from_spec(
            self.spec,
            config=SystemConfig(
                exchange=ExchangeConfig(
                    provenance_mode=self.config.provenance_mode,
                    execution_backend=self.config.execution_backend,
                ),
                store=self._store_config(
                    self.config.store_backend,
                    self.config.sync_mode,
                    self.config.sync_runtime,
                ),
            ),
        )
        self._check_spec_roundtrip()
        self._check_analyzer_clean()
        self.manual = CDSS.from_spec(self.spec)
        self.sqlite = CDSS.from_spec(
            self.spec, storage_factory=lambda name: SQLiteInstance()
        )
        #: Mirror replica on the *other* store backend: with a centralized
        #: primary this is the distributed-store replica (and vice versa),
        #: backing the distributed-vs-centralized oracle.
        self.storecheck: Optional[CDSS] = None
        if self.config.distributed_oracle:
            other = (
                "centralized"
                if self.config.store_backend == "distributed"
                else "distributed"
            )
            # Same sync mode as the primary, so the store backends are the
            # only variable the distributed-vs-centralized oracle compares.
            self.storecheck = CDSS.from_spec(
                self.spec,
                config=SystemConfig(
                    store=self._store_config(other, self.config.sync_mode)
                ),
            )
        #: Mirror replica on the *other* sync mode (same store backend):
        #: with a cursor primary this is the gossip replica (and vice
        #: versa), backing the sketch-vs-cursor oracle.
        self.synccheck: Optional[CDSS] = None
        if self.config.sketch_oracle:
            other_sync = "gossip" if self.config.sync_mode == "cursor" else "cursor"
            self.synccheck = CDSS.from_spec(
                self.spec,
                config=SystemConfig(
                    store=self._store_config(self.config.store_backend, other_sync)
                ),
            )
        #: Serial mirror replica (same backend, same sync mode) of an async
        #: primary, backing the concurrent-vs-serial oracle.  Only spawned
        #: when the primary runs the async scheduler, so serial configs keep
        #: their oracle count (and cost) unchanged.
        self.runtimecheck: Optional[CDSS] = None
        if self.config.sync_runtime == "async":
            self.runtimecheck = CDSS.from_spec(
                self.spec,
                config=SystemConfig(
                    store=self._store_config(
                        self.config.store_backend, self.config.sync_mode, "serial"
                    )
                ),
            )
        self._last_reports: dict[str, object] = {}
        #: DRed mirror: same program, provenance disabled, fed the primary's
        #: archived transaction stream.
        self.mirror = ExchangeEngine(
            self.primary.engine.program, ExchangeConfig(track_provenance=False)
        )
        self._mirror_fed = 0
        #: Execution-backend mirror: the same program on the *other* rule
        #: execution backend, fed the primary's archived transaction stream
        #: (the sql-vs-python oracle).
        other_backend = "sql" if self.config.execution_backend == "python" else "python"
        self.execcheck = ExchangeEngine(
            self.primary.engine.program,
            ExchangeConfig(execution_backend=other_backend),
        )
        self._execcheck_fed = 0

    # -- oracle helpers -----------------------------------------------------
    def _store_config(
        self, backend: str, sync_mode: str = "cursor", runtime: str = "serial"
    ) -> StoreConfig:
        return StoreConfig(
            backend=backend,
            shard_count=self.config.store_shards,
            replication_factor=self.config.store_replication,
            sync_mode=sync_mode,
            sketch=self.config.sync_sketch,
            sync_runtime=runtime,
        )

    def _distributed_replica(self) -> Optional[CDSS]:
        """Whichever replica runs the distributed store (primary or mirror)."""
        if self.config.store_backend == "distributed":
            return self.primary
        return self.storecheck

    def _fail(self, epoch: int, oracle: str, detail: str) -> None:
        self.failures.append(OracleFailure(self.seed, epoch, oracle, detail))

    def _check_spec_roundtrip(self) -> None:
        self.oracle_checks += 1
        reparsed = parse_network_spec(self.spec.to_text())
        if reparsed.to_dict() != self.spec.to_dict():
            self._fail(0, "spec-roundtrip", "to_text -> parse does not round-trip")
            return
        # Full system round-trip: the spec recovered from the *built* CDSS
        # must match the generated one.  The recovered form names each
        # schema explicitly, which for generated peers defaults to the peer
        # name, and pins the store section when the primary's archive is
        # distributed (the generated spec leaves the backend to the config).
        expected = self.spec.to_dict()
        for name, entry in expected["peers"].items():
            entry.setdefault("schema", name)
        from ..api.spec import execution_spec_of, store_spec_of, sync_spec_of

        recovered_store = store_spec_of(self.primary.store)
        if recovered_store is not None:
            expected["store"] = recovered_store.to_dict()
        # Likewise for the sync section when the primary gossips (the
        # generated spec leaves the catch-up strategy to the config).
        recovered_sync = sync_spec_of(self.primary)
        if recovered_sync is not None:
            expected["sync"] = recovered_sync.to_dict()
        # And for the execution directive when the primary runs SQL pushdown.
        recovered_execution = execution_spec_of(self.primary)
        if recovered_execution is not None:
            expected["execution"] = recovered_execution
        if self.primary.to_spec().to_dict() != expected:
            self._fail(0, "spec-roundtrip", "from_spec -> to_spec does not round-trip")

    def _check_analyzer_clean(self) -> None:
        """Generated networks must pass static analysis with zero errors.

        The generator only emits acyclic mapping graphs over consistent
        schemas, so an error-severity diagnostic (unsafe rule, weak
        acyclicity, arity mismatch, ...) means either the generator or the
        analyzer regressed.  Warnings are allowed: random trust tables
        legitimately shadow defaults or trust unreachable peers.
        """
        from ..analysis import analyze_network_spec

        self.oracle_checks += 1
        report = analyze_network_spec(self.spec)
        if not report.ok:
            findings = "; ".join(
                diagnostic.render() for diagnostic in report.errors()
            )
            self._fail(0, "analyzer", f"generated spec has analyzer errors: {findings}")

    def _check_incremental_vs_recompute(self, epoch: int) -> None:
        self.oracle_checks += 1
        engine = self.primary.engine
        diff = _diff_relation_maps(
            _database_relations(engine.database),
            _database_relations(engine.reference_database()),
            "incremental", "recomputed",
        )
        if diff:
            self._fail(epoch, "incremental-vs-recompute", diff)

    def _check_provenance_vs_dred(self, epoch: int) -> None:
        self.oracle_checks += 1
        entries = self.primary.store.all_entries()
        for entry in entries[self._mirror_fed:]:
            self.mirror.process_transaction(entry.transaction)
        self._mirror_fed = len(entries)
        diff = _diff_relation_maps(
            _database_relations(self.primary.engine.database),
            _database_relations(self.mirror.database),
            "provenance", "dred",
        )
        if diff:
            self._fail(epoch, "provenance-vs-dred", diff)

    def _check_sql_vs_python(self, epoch: int) -> None:
        """Same program on the other execution backend: identical instances
        and provenance polynomials (sampled)."""
        self.oracle_checks += 1
        entries = self.primary.store.all_entries()
        for entry in entries[self._execcheck_fed:]:
            self.execcheck.process_transaction(entry.transaction)
        self._execcheck_fed = len(entries)
        primary_label = self.config.execution_backend
        mirror_label = self.execcheck.config.execution_backend
        diff = _diff_relation_maps(
            _database_relations(self.primary.engine.database),
            _database_relations(self.execcheck.database),
            primary_label, mirror_label,
        )
        if diff:
            self._fail(epoch, "sql-vs-python", diff)
            return
        graph = self.primary.engine.provenance
        mirror_graph = self.execcheck.provenance
        if (
            graph is None
            or mirror_graph is None
            or self.config.provenance_oracle_samples == 0
        ):
            return
        from ..errors import ProvenanceError

        derived = sorted(
            (node.key for node in graph.tuples() if not node.is_base), key=repr
        )
        sample_size = min(len(derived), self.config.provenance_oracle_samples)
        for relation, values in self._oracle_rng.sample(derived, sample_size):
            try:
                primary_polynomial = graph.polynomial_for(
                    relation, values,
                    max_monomials=self.config.provenance_oracle_max_monomials,
                )
                mirror_polynomial = mirror_graph.polynomial_for(
                    relation, values,
                    max_monomials=self.config.provenance_oracle_max_monomials,
                )
            except ProvenanceError:
                continue  # expansion over budget on either side
            if primary_polynomial != mirror_polynomial:
                self._fail(
                    epoch,
                    "sql-vs-python",
                    f"{relation}{values!r}: {primary_label}={primary_polynomial!r} "
                    f"{mirror_label}={mirror_polynomial!r}",
                )
                return

    def _check_sync_vs_manual(self, epoch: int, primary_snapshot=None) -> None:
        self.oracle_checks += 1
        primary_snapshot = primary_snapshot or _snapshot_all(self.primary)
        diff = _diff_snapshots(
            primary_snapshot, _snapshot_all(self.manual), "sync", "manual"
        )
        if diff:
            self._fail(epoch, "sync-vs-manual", diff)

    def _check_memory_vs_sqlite(self, epoch: int, primary_snapshot=None) -> None:
        self.oracle_checks += 1
        primary_snapshot = primary_snapshot or _snapshot_all(self.primary)
        diff = _diff_snapshots(
            primary_snapshot, _snapshot_all(self.sqlite), "memory", "sqlite"
        )
        if diff:
            self._fail(epoch, "memory-vs-sqlite", diff)

    def _check_distributed_vs_centralized(
        self,
        epoch: int,
        primary_report=None,
        storecheck_report=None,
        primary_snapshot=None,
    ) -> None:
        """Distributed-store and centralized-store runs must be identical.

        Round for round, the two replicas' sync reports (published ids,
        translated changes, per-peer accept/reject/defer decisions) and the
        resulting peer instances must match exactly — sharding, quorum reads
        and re-replication may never change a reconcile outcome.
        """
        if self.storecheck is None:
            return
        self.oracle_checks += 1
        primary_report = primary_report or self._last_reports.get("primary")
        storecheck_report = storecheck_report or self._last_reports.get("storecheck")
        if primary_report is not None and storecheck_report is not None:
            left = [round_.to_dict() for round_ in primary_report.rounds]
            right = [round_.to_dict() for round_ in storecheck_report.rounds]
            if left != right:
                for index, (a, b) in enumerate(zip(left, right)):
                    if a != b:
                        detail = f"sync round {index + 1} diverges: {a} != {b}"
                        break
                else:
                    detail = (
                        f"round counts diverge: {len(left)} vs {len(right)} rounds"
                    )
                self._fail(epoch, "distributed-vs-centralized", detail)
                return
        primary_snapshot = primary_snapshot or _snapshot_all(self.primary)
        diff = _diff_snapshots(
            primary_snapshot,
            _snapshot_all(self.storecheck),
            self.config.store_backend,
            "mirror-store",
        )
        if diff:
            self._fail(epoch, "distributed-vs-centralized", diff)

    def _check_sketch_vs_cursor(
        self,
        epoch: int,
        primary_report=None,
        synccheck_report=None,
        primary_snapshot=None,
    ) -> None:
        """Gossip-sketch and cursor-replay catch-up must be indistinguishable.

        Round for round, the two replicas' sync reports (published ids,
        translated changes, per-peer accept/reject/defer decisions) and the
        resulting peer instances must match exactly — sketch decode
        failures and cursor fallbacks may cost bytes and messages, never
        reconcile outcomes.  Gossip traffic accounting deliberately lives in
        :attr:`~repro.api.sync.SyncReport.gossip`, not the round dicts, so
        this comparison stays byte-for-byte.
        """
        if self.synccheck is None:
            return
        self.oracle_checks += 1
        primary_report = primary_report or self._last_reports.get("primary")
        synccheck_report = synccheck_report or self._last_reports.get("synccheck")
        if primary_report is not None and synccheck_report is not None:
            left = [round_.to_dict() for round_ in primary_report.rounds]
            right = [round_.to_dict() for round_ in synccheck_report.rounds]
            if left != right:
                for index, (a, b) in enumerate(zip(left, right)):
                    if a != b:
                        detail = f"sync round {index + 1} diverges: {a} != {b}"
                        break
                else:
                    detail = (
                        f"round counts diverge: {len(left)} vs {len(right)} rounds"
                    )
                self._fail(epoch, "sketch-vs-cursor", detail)
                return
        primary_snapshot = primary_snapshot or _snapshot_all(self.primary)
        diff = _diff_snapshots(
            primary_snapshot,
            _snapshot_all(self.synccheck),
            self.config.sync_mode,
            "mirror-sync",
        )
        if diff:
            self._fail(epoch, "sketch-vs-cursor", diff)

    def _check_async_vs_serial(
        self,
        epoch: int,
        primary_report=None,
        runtimecheck_report=None,
        primary_snapshot=None,
    ) -> None:
        """The async scheduler must be invisible to sync semantics.

        Round for round, the pipelined runtime's sync reports (published
        ids, per-peer accept/reject/defer decisions), its open conflicts,
        and the resulting peer instances must match a serial replica run on
        the same seed — overlapped transfers, admission control, and
        backpressure may only change *when* simulated traffic moves, never
        what any peer decides.
        """
        if self.runtimecheck is None:
            return
        self.oracle_checks += 1
        primary_report = primary_report or self._last_reports.get("primary")
        runtimecheck_report = runtimecheck_report or self._last_reports.get(
            "runtimecheck"
        )
        if primary_report is not None and runtimecheck_report is not None:
            left = [round_.to_dict() for round_ in primary_report.rounds]
            right = [round_.to_dict() for round_ in runtimecheck_report.rounds]
            if left != right:
                for index, (a, b) in enumerate(zip(left, right)):
                    if a != b:
                        detail = f"sync round {index + 1} diverges: {a} != {b}"
                        break
                else:
                    detail = (
                        f"round counts diverge: {len(left)} vs {len(right)} rounds"
                    )
                self._fail(epoch, "async-vs-serial", detail)
                return
            if primary_report.open_conflicts != runtimecheck_report.open_conflicts:
                self._fail(
                    epoch,
                    "async-vs-serial",
                    f"open conflicts diverge: {primary_report.open_conflicts} "
                    f"!= {runtimecheck_report.open_conflicts}",
                )
                return
        primary_snapshot = primary_snapshot or _snapshot_all(self.primary)
        diff = _diff_snapshots(
            primary_snapshot,
            _snapshot_all(self.runtimecheck),
            "async",
            "mirror-serial",
        )
        if diff:
            self._fail(epoch, "async-vs-serial", diff)

    def _check_replica_durability(self, epoch: int) -> None:
        """Every archived transaction must survive losing k-1 shard replicas.

        After the epoch's churn has settled (and one anti-entropy round has
        run, as a reconnecting peer would trigger anyway), every sequence
        assigned to a shard must be held by at least
        ``min(replication_factor, peers)`` replicas — so losing any
        ``replication_factor - 1`` of them still leaves a copy — and a full
        quorum read must return every transaction ever archived.
        """
        replica = self._distributed_replica()
        if replica is None:
            return
        self.oracle_checks += 1
        store = replica.store
        store.anti_entropy()
        under = store.under_replicated()
        if under:
            self._fail(
                epoch,
                "replica-durability",
                f"under-replicated sequences per shard: {under}",
            )
            return
        expected = len(store)
        readable = len(store.all_entries())
        if readable != expected:
            self._fail(
                epoch,
                "replica-durability",
                f"quorum read returned {readable} of {expected} archived transactions",
            )

    def _check_dag_vs_expanded(self, epoch: int) -> None:
        """Sampled derived tuples: DAG evaluation == expanded-polynomial evaluation.

        Checks the hash-consed circuit (memoized semiring evaluation, after
        whatever insertions/deletions/invalidations this epoch performed)
        against :func:`~repro.provenance.graph.reference_polynomial`, which
        expands by walking the derivation hyper-graph directly and never
        touches the circuit — a genuinely independent implementation — under
        a boolean, a counting, and a tropical assignment.
        """
        if self.config.provenance_oracle_samples == 0:
            return
        graph = self.primary.engine.provenance
        if graph is None:
            return
        self.oracle_checks += 1
        from ..errors import ProvenanceError
        from ..provenance.graph import reference_polynomial
        from ..provenance.semiring import (
            BooleanSemiring,
            CountingSemiring,
            TropicalSemiring,
        )

        derived = sorted(
            (node.key for node in graph.tuples() if not node.is_base), key=repr
        )
        # Seeded random sample (not a fixed prefix): different epochs and
        # seeds cross-check different tuples while staying reproducible.
        sample_size = min(len(derived), self.config.provenance_oracle_samples)
        sample = self._oracle_rng.sample(derived, sample_size)
        variables = list(graph.base_variables())
        semirings = [
            (BooleanSemiring(), {variable: True for variable in variables}),
            (CountingSemiring(), {variable: 1 for variable in variables}),
            (TropicalSemiring(), {variable: 1.0 for variable in variables}),
        ]
        for relation, values in sample:
            try:
                polynomial = reference_polynomial(
                    graph,
                    relation,
                    values,
                    max_monomials=self.config.provenance_oracle_max_monomials,
                )
            except ProvenanceError:
                continue  # expansion over budget: exactly what the DAG avoids
            for semiring, assignment in semirings:
                # Evaluate the circuit explicitly (root + memoized evaluator)
                # rather than through graph.annotation, which in expanded
                # mode would route both sides through the same expansion.
                dag_value = graph.evaluator(semiring, assignment).value(
                    graph.root(relation, values)
                )
                completed = {
                    variable: assignment.get(variable, semiring.one())
                    for variable in polynomial.variables()
                }
                expanded_value = polynomial.evaluate(semiring, completed)
                if dag_value != expanded_value:
                    self._fail(
                        epoch,
                        "dag-vs-expanded",
                        f"{relation}{values!r} under {semiring.name}: "
                        f"dag={dag_value!r} expanded={expanded_value!r}",
                    )
                    return

    # -- driving ------------------------------------------------------------
    def _replicas(self) -> tuple[CDSS, ...]:
        replicas = [self.primary, self.manual, self.sqlite]
        if self.storecheck is not None:
            replicas.append(self.storecheck)
        if self.synccheck is not None:
            replicas.append(self.synccheck)
        if self.runtimecheck is not None:
            replicas.append(self.runtimecheck)
        return tuple(replicas)

    def _commit_everywhere(self, command: WorkloadCommand) -> None:
        for cdss in self._replicas():
            peer = cdss.peer(command.peer)
            builder = peer.new_transaction(command.txn_id)
            if command.kind == "delete":
                builder.delete(command.relation, command.values)
            elif command.kind == "modify":
                builder.modify(command.relation, command.old_values, command.values)
            else:  # insert / conflict
                builder.insert(command.relation, command.values)
            peer.commit(builder)

    def _manual_exchange_loop(self) -> None:
        """The hand-rolled publish/reconcile loop ``sync()`` must match."""
        names = self.manual.catalog.peer_names()
        for _ in range(self.config.max_sync_rounds):
            published = 0
            candidates = 0
            skipped: list[str] = []
            for name in names:
                if self.manual.network.is_online(name):
                    published += len(self.manual.publish(name).published)
                else:
                    skipped.append(name)
            for name in names:
                if name not in skipped:
                    candidates += self.manual.reconcile(name).candidates_considered
            if published == 0 and candidates == 0:
                return
        raise ReproError(
            f"manual exchange loop did not quiesce within {self.config.max_sync_rounds} rounds"
        )

    def run_epoch(self, epoch: int, last_epoch: bool) -> None:
        commands = self.workload.epoch_commands()
        for command in commands:
            self._commit_everywhere(command)
        self.transactions += len(commands)

        offline = self.workload.offline_peer(last_epoch)
        replicas = self._replicas()
        if offline is not None:
            for cdss in replicas:
                cdss.set_online(offline, False)

        primary_report = self.primary.sync(max_rounds=self.config.max_sync_rounds)
        self.sqlite.sync(max_rounds=self.config.max_sync_rounds)
        storecheck_report = None
        if self.storecheck is not None:
            storecheck_report = self.storecheck.sync(
                max_rounds=self.config.max_sync_rounds
            )
        synccheck_report = None
        if self.synccheck is not None:
            synccheck_report = self.synccheck.sync(
                max_rounds=self.config.max_sync_rounds
            )
        runtimecheck_report = None
        if self.runtimecheck is not None:
            runtimecheck_report = self.runtimecheck.sync(
                max_rounds=self.config.max_sync_rounds
            )
        self._manual_exchange_loop()
        self._last_reports = {
            "primary": primary_report,
            "storecheck": storecheck_report,
            "synccheck": synccheck_report,
            "runtimecheck": runtimecheck_report,
        }

        if offline is not None:
            for cdss in replicas:
                cdss.set_online(offline, True)

        self._check_incremental_vs_recompute(epoch)
        self._check_provenance_vs_dred(epoch)
        self._check_sql_vs_python(epoch)
        self._check_dag_vs_expanded(epoch)
        primary_snapshot = _snapshot_all(self.primary)
        self._check_sync_vs_manual(epoch, primary_snapshot)
        self._check_memory_vs_sqlite(epoch, primary_snapshot)
        self._check_distributed_vs_centralized(
            epoch, primary_report, storecheck_report, primary_snapshot
        )
        self._check_sketch_vs_cursor(
            epoch, primary_report, synccheck_report, primary_snapshot
        )
        self._check_async_vs_serial(
            epoch, primary_report, runtimecheck_report, primary_snapshot
        )
        self._check_replica_durability(epoch)
        self.epochs_run = epoch

    def run(self) -> SimulationResult:
        """Run every epoch, stopping at the first failing oracle."""
        if not self.failures:
            for epoch in range(1, self.config.epochs + 1):
                self.run_epoch(epoch, last_epoch=epoch == self.config.epochs)
                if self.failures:
                    break
        return SimulationResult(
            seed=self.seed,
            peers=len(self.spec.peers),
            mappings=len(self.spec.mappings),
            epochs_run=self.epochs_run,
            transactions=self.transactions,
            oracle_checks=self.oracle_checks,
            failures=self.failures,
        )


def run_simulation(
    seed: int, config: Optional[SimulationConfig] = None
) -> SimulationResult:
    """Generate the network for ``seed``, drive it, and check every oracle."""
    return SimulationRun(seed, config).run()


def run_campaign(
    seeds: Iterable[int], config: Optional[SimulationConfig] = None
) -> CampaignResult:
    """Run :func:`run_simulation` over a batch of seeds."""
    campaign = CampaignResult()
    for seed in seeds:
        campaign.results.append(run_simulation(seed, config))
    return campaign
