"""The five demonstration scenarios of Section 4, as scripted runs.

Each scenario builds a fresh Figure-2 network (from its declarative spec)
and drives the exchange with the orchestrated ``cdss.sync()`` API: one call
publishes every participating peer's pending transactions and reconciles
all of them until quiescence, returning a :class:`~repro.api.sync.SyncReport`
whose per-peer decisions the observations quote.  Scenarios restrict
``sync(peers=...)`` to the participants the demonstration script names, so
the interleavings match the paper exactly (e.g. in Scenario 3 Crete must
not reconcile before Beijing's dependent modification is published).

The integration tests and the benchmark harness both run these scenarios;
EXPERIMENTS.md records the observed outcomes next to the paper's
description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.system import CDSS
from .bioinformatics import FigureTwoNetwork, build_figure2_network


@dataclass
class ScenarioOutcome:
    """Outcome of one scripted demonstration scenario."""

    scenario_id: str
    title: str
    observations: dict[str, object] = field(default_factory=dict)
    network: FigureTwoNetwork | None = None

    def observation(self, key: str) -> object:
        return self.observations[key]


def _decision(cdss: CDSS, peer: str, txn_id: str) -> str:
    return cdss.reconciliation_state(peer).decision(txn_id).value


def scenario_1_bidirectional_translation() -> ScenarioOutcome:
    """Scenario 1: updates made by Alaska get translated into Dresden's schema
    and applied, and vice versa."""
    network = build_figure2_network()
    cdss = network.cdss
    alaska, dresden = network.alaska, network.dresden

    builder = alaska.new_transaction()
    builder.insert("O", ("E. coli", 1))
    builder.insert("P", ("lacZ", 10))
    builder.insert("S", (1, 10, "ATGACCATGATT"))
    alaska_txn = alaska.commit(builder)
    first = cdss.sync(peers=["Alaska", "Dresden"])

    dresden_txn = dresden.insert("OPS", ("H. sapiens", "BRCA1", "GGCTAGCTAGCT"))
    second = cdss.sync(peers=["Dresden", "Alaska"])

    observations = {
        "alaska_txn": alaska_txn.txn_id,
        "dresden_txn": dresden_txn.txn_id,
        "dresden_accepted_alaska": alaska_txn.txn_id in first.accepted("Dresden"),
        "dresden_ops": set(dresden.tuples("OPS")),
        "alaska_accepted_dresden": dresden_txn.txn_id in second.accepted("Alaska"),
        "alaska_has_translated_organism": any(
            values[0] == "H. sapiens" for values in alaska.tuples("O")
        ),
        "alaska_has_translated_sequence": any(
            values[2] == "GGCTAGCTAGCT" for values in alaska.tuples("S")
        ),
        "sync_rounds": first.round_count + second.round_count,
    }
    return ScenarioOutcome("DEMO-S1", "Bidirectional update translation", observations, network)


def scenario_2_conflict_and_dependent_rejection() -> ScenarioOutcome:
    """Scenario 2: Beijing and Dresden publish conflicting updates; Crete
    rejects Dresden's, and later also rejects Dresden's dependent follow-up."""
    network = build_figure2_network()
    cdss = network.cdss
    beijing, crete, dresden = network.beijing, network.crete, network.dresden

    # Conflicting assertions about the same (organism, protein) pair.
    builder = beijing.new_transaction()
    builder.insert("O", ("E. coli", 1))
    builder.insert("P", ("recA", 11))
    builder.insert("S", (1, 11, "AAAAAACCCCCC"))
    beijing_txn = beijing.commit(builder)

    dresden_txn = dresden.insert("OPS", ("E. coli", "recA", "GGGGGGTTTTTT"))

    first = cdss.sync(peers=["Beijing", "Dresden", "Crete"])

    # Dresden then publishes a follow-up that depends on its earlier update.
    follow_up = dresden.modify(
        "OPS",
        ("E. coli", "recA", "GGGGGGTTTTTT"),
        ("E. coli", "recA", "GGGGGGTTTTAA"),
    )
    second = cdss.sync(peers=["Dresden", "Crete"])

    observations = {
        "beijing_txn": beijing_txn.txn_id,
        "dresden_txn": dresden_txn.txn_id,
        "dresden_follow_up": follow_up.txn_id,
        "crete_accepts_beijing": beijing_txn.txn_id in first.accepted("Crete"),
        "crete_rejects_dresden": dresden_txn.txn_id in first.rejected("Crete"),
        "crete_rejects_follow_up": follow_up.txn_id in second.rejected("Crete"),
        "crete_ops": set(crete.tuples("OPS")),
        "crete_sequence_is_beijings": ("E. coli", "recA", "AAAAAACCCCCC")
        in crete.tuples("OPS"),
    }
    return ScenarioOutcome(
        "DEMO-S2", "Conflict resolution by trust and dependent rejection", observations, network
    )


def scenario_3_antecedent_acceptance() -> ScenarioOutcome:
    """Scenario 3: Alaska inserts several data points in one transaction;
    Beijing modifies one of them; Crete accepts Beijing's transaction together
    with the Alaska antecedent even though it does not trust Alaska."""
    network = build_figure2_network()
    cdss = network.cdss
    alaska, beijing, crete = network.alaska, network.beijing, network.crete

    builder = alaska.new_transaction()
    builder.insert("O", ("D. melanogaster", 3))
    builder.insert("P", ("gal4", 12))
    builder.insert("S", (3, 12, "TTTTTTTTTTTT"))
    builder.insert("O", ("C. elegans", 4))
    builder.insert("P", ("actin", 13))
    builder.insert("S", (4, 13, "CCCCCCCCCCCC"))
    alaska_txn = alaska.commit(builder)

    # Beijing first learns Alaska's data (Crete must not reconcile yet, or it
    # would reject the distrusted Alaska transaction outright)...
    cdss.sync(peers=["Alaska", "Beijing"])
    # ...then modifies one sequence, publishing a dependent transaction.
    beijing_txn = beijing.modify(
        "S", (3, 12, "TTTTTTTTTTTT"), (3, 12, "TTTTTTTTGGGG")
    )
    second = cdss.sync(peers=["Beijing", "Crete"])

    observations = {
        "alaska_txn": alaska_txn.txn_id,
        "beijing_txn": beijing_txn.txn_id,
        "beijing_depends_on_alaska": alaska_txn.txn_id in beijing_txn.antecedents,
        "crete_accepts_beijing": beijing_txn.txn_id in second.accepted("Crete"),
        "crete_accepts_alaska_antecedent": alaska_txn.txn_id in second.accepted("Crete"),
        "crete_has_modified_sequence": ("D. melanogaster", "gal4", "TTTTTTTTGGGG")
        in crete.tuples("OPS"),
        "crete_has_untouched_antecedent_data": ("C. elegans", "actin", "CCCCCCCCCCCC")
        in crete.tuples("OPS"),
        "crete_ops": set(crete.tuples("OPS")),
    }
    return ScenarioOutcome(
        "DEMO-S3", "Accepting a trusted update together with an untrusted antecedent",
        observations, network,
    )


def scenario_4_deferral_and_resolution() -> ScenarioOutcome:
    """Scenario 4: Beijing and Alaska publish conflicting updates; Dresden
    defers both, then defers Crete's dependent modification, and finally the
    administrator resolves the conflict, automatically accepting Crete's
    transaction."""
    network = build_figure2_network()
    cdss = network.cdss
    alaska, beijing, crete, dresden = (
        network.alaska,
        network.beijing,
        network.crete,
        network.dresden,
    )

    builder = beijing.new_transaction()
    builder.insert("O", ("S. cerevisiae", 5))
    builder.insert("P", ("hsp70", 14))
    builder.insert("S", (5, 14, "ACGTACGTACGT"))
    beijing_txn = beijing.commit(builder)

    builder = alaska.new_transaction()
    builder.insert("O", ("S. cerevisiae", 5))
    builder.insert("P", ("hsp70", 14))
    builder.insert("S", (5, 14, "TGCATGCATGCA"))
    alaska_txn = alaska.commit(builder)

    # One sync: both conflicting transactions reach every peer.  Dresden
    # trusts both equally and defers; Crete prefers Beijing and accepts it.
    first = cdss.sync()
    first_dresden = next(
        outcome for outcome in first.rounds[0].reconciled if outcome.peer == "Dresden"
    )

    # Crete publishes a modification on top of Beijing's (deferred) data.
    crete_txn = crete.modify(
        "OPS",
        ("S. cerevisiae", "hsp70", "ACGTACGTACGT"),
        ("S. cerevisiae", "hsp70", "ACGTACGTAAAA"),
    )
    second = cdss.sync(peers=["Crete", "Dresden"])

    resolution = cdss.resolve_conflict("Dresden", beijing_txn.txn_id)

    observations = {
        "beijing_txn": beijing_txn.txn_id,
        "alaska_txn": alaska_txn.txn_id,
        "crete_txn": crete_txn.txn_id,
        "dresden_defers_both": beijing_txn.txn_id in first.deferred("Dresden")
        and alaska_txn.txn_id in first.deferred("Dresden"),
        "dresden_open_conflicts_after_first": first_dresden.result.conflicts_deferred,
        "dresden_defers_crete": crete_txn.txn_id in second.deferred("Dresden")
        or crete_txn.txn_id in second.pending("Dresden"),
        "open_conflicts_reported": first.open_conflicts.get("Dresden", 0),
        "resolution_accepts_beijing": beijing_txn.txn_id in resolution.accepted,
        "resolution_rejects_alaska": alaska_txn.txn_id in resolution.rejected,
        "resolution_accepts_crete_automatically": crete_txn.txn_id in resolution.accepted,
        "dresden_final_sequence": ("S. cerevisiae", "hsp70", "ACGTACGTAAAA")
        in dresden.tuples("OPS"),
        "dresden_decisions": {
            txn: _decision(cdss, "Dresden", txn)
            for txn in (beijing_txn.txn_id, alaska_txn.txn_id, crete_txn.txn_id)
        },
    }
    return ScenarioOutcome(
        "DEMO-S4", "Deferral of equal-priority conflicts and manual resolution",
        observations, network,
    )


def scenario_5_offline_publisher() -> ScenarioOutcome:
    """Scenario 5: Beijing publishes a number of updates and then goes
    offline; Alaska can reconcile and still retrieve Beijing's updates."""
    network = build_figure2_network()
    cdss = network.cdss
    alaska, beijing = network.alaska, network.beijing

    committed = []
    for index in range(3):
        builder = beijing.new_transaction()
        builder.insert("O", (f"organism-{index}", 50 + index))
        builder.insert("P", (f"protein-{index}", 80 + index))
        builder.insert("S", (50 + index, 80 + index, "ACGT" * 3))
        committed.append(beijing.commit(builder))
    cdss.sync(peers=["Beijing"])

    # Beijing disconnects; its archived updates must remain retrievable, and
    # the network-wide sync must report the skipped peer instead of silently
    # dropping it.
    cdss.set_online("Beijing", False)
    report = cdss.sync()

    observations = {
        "beijing_txns": [txn.txn_id for txn in committed],
        "beijing_online": cdss.network.is_online("Beijing"),
        "sync_skipped_offline": report.skipped_offline,
        "alaska_accepted_all": all(
            txn.txn_id in report.accepted("Alaska") for txn in committed
        ),
        "alaska_organism_count": len(alaska.tuples("O")),
        "store_still_has_beijing": all(
            cdss.store.contains(txn.txn_id) for txn in committed
        ),
        "archive_availability": cdss.replication.availability_ratio(
            [txn.txn_id for txn in committed]
        ),
    }
    return ScenarioOutcome(
        "DEMO-S5", "Publisher goes offline; archived updates remain available",
        observations, network,
    )


#: All five scenarios keyed by their experiment id.
ALL_SCENARIOS: dict[str, Callable[[], ScenarioOutcome]] = {
    "DEMO-S1": scenario_1_bidirectional_translation,
    "DEMO-S2": scenario_2_conflict_and_dependent_rejection,
    "DEMO-S3": scenario_3_antecedent_acceptance,
    "DEMO-S4": scenario_4_deferral_and_resolution,
    "DEMO-S5": scenario_5_offline_publisher,
}


def run_all_scenarios() -> dict[str, ScenarioOutcome]:
    """Run every demonstration scenario and return the outcomes by id."""
    return {scenario_id: factory() for scenario_id, factory in ALL_SCENARIOS.items()}
