"""Configuration dataclasses for the CDSS engines.

The defaults reproduce the behaviour described in the paper; benchmarks and
ablations override individual knobs (for example, disabling incremental
maintenance or provenance tracking).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigurationError


@dataclass(frozen=True)
class ExchangeConfig:
    """Configuration for the update exchange engine.

    Attributes:
        incremental: Use delta rules / DRed instead of full recomputation.
        track_provenance: Maintain provenance for derived tuples.
        provenance_mode: How stored provenance is evaluated — ``"circuit"``
            (the hash-consed DAG with memoized semiring evaluation, the
            default) or ``"expanded"`` (per-tuple polynomial expansion, the
            slow ablation representation the DAG replaces).
        max_iterations: Safety bound on semi-naive iterations (0 = unbounded).
        skolem_prefix: Prefix used for labelled nulls created by existential
            variables in mappings.
        execution_backend: How compiled rule plans are fired — ``"python"``
            (the tuple-at-a-time closure executor, the default) or ``"sql"``
            (set-at-a-time ``INSERT ... SELECT`` pushdown into an in-memory
            SQLite mirror; see :mod:`repro.datalog.sql_executor`).  Both
            backends produce identical databases and provenance polynomials.
    """

    incremental: bool = True
    track_provenance: bool = True
    provenance_mode: str = "circuit"
    max_iterations: int = 0
    skolem_prefix: str = "SK"
    execution_backend: str = "python"

    def __post_init__(self) -> None:
        if self.max_iterations < 0:
            raise ConfigurationError("max_iterations must be >= 0")
        if not self.skolem_prefix:
            raise ConfigurationError("skolem_prefix must be non-empty")
        if self.provenance_mode not in ("circuit", "expanded"):
            raise ConfigurationError(
                f"provenance_mode must be 'circuit' or 'expanded', got {self.provenance_mode!r}"
            )
        if self.execution_backend not in ("python", "sql"):
            raise ConfigurationError(
                f"execution backend must be 'python' or 'sql', got {self.execution_backend!r}"
            )


@dataclass(frozen=True)
class ReconciliationConfig:
    """Configuration for the reconciliation algorithm.

    Attributes:
        default_priority: Priority assigned to transactions that match no
            trust condition but are not distrusted either.  The paper treats
            unmatched updates as untrusted; keeping the default at 0 rejects
            them unless a condition grants a positive priority.
        defer_on_ties: Defer mutually conflicting groups of equal priority to
            the administrator (paper behaviour).  When ``False`` ties are
            broken deterministically by transaction id (baseline ablation).
        strict_antecedents: Reject candidates whose antecedents were rejected
            (paper behaviour).  ``False`` applies candidates whose antecedent
            data happens to already be present.
    """

    default_priority: int = 0
    defer_on_ties: bool = True
    strict_antecedents: bool = True

    def __post_init__(self) -> None:
        if self.default_priority < 0:
            raise ConfigurationError("default_priority must be >= 0")


@dataclass(frozen=True)
class StoreConfig:
    """Configuration of the peer-to-peer update store.

    Attributes:
        backend: ``"centralized"`` (single in-memory archive, the default) or
            ``"distributed"`` (sharded, replicated archive hosted on the
            peers themselves; see :mod:`repro.p2p.distributed`).
        replication_factor: Number of replicas of each shard (distributed
            backend) or replica slots per transaction in the overlay
            accounting (centralized backend).
        shard_count: Number of shards of the distributed archive.
        write_quorum: Acks required for a non-degraded write; ``None`` means
            a majority of the replication factor.
        read_quorum: Replicas consulted per shard on reads.
        segment_size: Epochs per log segment (the unit of shard placement).
        require_online_to_publish: Publishing requires the peer to be online.
        require_online_to_reconcile: Reconciling requires the peer to be
            online (it must reach the archive).
        sync_mode: How peers catch up on published transactions —
            ``"cursor"`` (each peer replays its log tail straight from the
            archive, the default) or ``"gossip"`` (fanout-f epidemic
            anti-entropy over set-reconciliation sketches; see
            :mod:`repro.p2p.gossip`).
        gossip_fanout: Partners each online peer reconciles with per gossip
            round (gossip mode only).
        sketch: Which set-reconciliation sketch sessions use — ``"iblt"``
            (subtractable invertible Bloom lookup table, decodes the exact
            symmetric difference) or ``"bloom"`` (counting Bloom filter).
        sketch_capacity: Initial sketch capacity in difference elements.
        sketch_growth: Capacity multiplier applied on each decode failure.
        sketch_attempts: Sketch attempts before falling back to cursor replay.
        sync_runtime: How ``cdss.sync()`` schedules the network —
            ``"serial"`` (the strict round-robin loop, the default) or
            ``"async"`` (the pipelined asyncio runtime of
            :mod:`repro.api.async_sync`: independent peers publish and
            reconcile concurrently on a virtual clock, publish fan-out
            overlaps reconciliation, and bounded per-peer queues apply
            backpressure).  Both runtimes produce identical reports.
        sync_workers: Admission-control limit of the async runtime — the
            number of peer transfers allowed in flight at once.
        sync_queue_depth: Bound on each peer's delivery queue (async
            runtime); a full queue blocks its producers (backpressure)
            instead of growing without bound.
        observability: What the shared :mod:`repro.obs` layer records —
            ``"off"`` (metrics registry only, reports unchanged — the
            default), ``"metrics"`` (additionally attach the flat metrics
            snapshot to ``SyncReport.metrics``), or ``"trace"`` (metrics
            plus a deterministic span tracer stamped from the virtual
            clock, exportable as Chrome-trace JSON).
    """

    backend: str = "centralized"
    replication_factor: int = 2
    shard_count: int = 4
    write_quorum: int | None = None
    read_quorum: int = 1
    segment_size: int = 8
    require_online_to_publish: bool = True
    require_online_to_reconcile: bool = True
    sync_mode: str = "cursor"
    gossip_fanout: int = 2
    sketch: str = "iblt"
    sketch_capacity: int = 32
    sketch_growth: int = 4
    sketch_attempts: int = 3
    sync_runtime: str = "serial"
    sync_workers: int = 8
    sync_queue_depth: int = 4
    observability: str = "off"

    def __post_init__(self) -> None:
        if self.backend not in ("centralized", "distributed"):
            raise ConfigurationError(
                f"store backend must be 'centralized' or 'distributed', got {self.backend!r}"
            )
        if self.replication_factor < 1:
            raise ConfigurationError("replication_factor must be >= 1")
        if self.shard_count < 1:
            raise ConfigurationError("shard_count must be >= 1")
        if self.segment_size < 1:
            raise ConfigurationError("segment_size must be >= 1")
        if not 1 <= self.read_quorum <= self.replication_factor:
            raise ConfigurationError(
                "read_quorum must lie in [1, replication_factor]"
            )
        if self.write_quorum is not None and not (
            1 <= self.write_quorum <= self.replication_factor
        ):
            raise ConfigurationError(
                "write_quorum must be None (majority) or in [1, replication_factor]"
            )
        if self.sync_mode not in ("cursor", "gossip"):
            raise ConfigurationError(
                f"sync_mode must be 'cursor' or 'gossip', got {self.sync_mode!r}"
            )
        if self.sketch not in ("iblt", "bloom"):
            raise ConfigurationError(
                f"sketch must be 'iblt' or 'bloom', got {self.sketch!r}"
            )
        if self.gossip_fanout < 1:
            raise ConfigurationError("gossip_fanout must be >= 1")
        if self.sketch_capacity < 1:
            raise ConfigurationError("sketch_capacity must be >= 1")
        if self.sketch_growth < 2:
            raise ConfigurationError("sketch_growth must be >= 2")
        if self.sketch_attempts < 1:
            raise ConfigurationError("sketch_attempts must be >= 1")
        if self.sync_runtime not in ("serial", "async"):
            raise ConfigurationError(
                f"sync_runtime must be 'serial' or 'async', got {self.sync_runtime!r}"
            )
        if self.sync_workers < 1:
            raise ConfigurationError("sync_workers must be >= 1")
        if self.sync_queue_depth < 1:
            raise ConfigurationError("sync_queue_depth must be >= 1")
        if self.observability not in ("off", "metrics", "trace"):
            raise ConfigurationError(
                "observability must be 'off', 'metrics', or 'trace', "
                f"got {self.observability!r}"
            )


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration for a :class:`repro.core.system.CDSS`."""

    exchange: ExchangeConfig = field(default_factory=ExchangeConfig)
    reconciliation: ReconciliationConfig = field(default_factory=ReconciliationConfig)
    store: StoreConfig = field(default_factory=StoreConfig)

    @staticmethod
    def default() -> "SystemConfig":
        """Return the configuration used throughout the paper's scenarios."""
        return SystemConfig()
