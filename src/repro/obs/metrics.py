"""Shared metrics registry: counters, gauges, and histograms.

Naming contract (linted in CI): every metric name is dotted lowercase —
``^[a-z][a-z0-9_]*(\\.[a-z][a-z0-9_]*)+$`` — and no dotted component may
collide with a ``CDSS###`` diagnostic code from :mod:`repro.analysis`.
Per-peer series share the base name and carry the peer as a label; the
flat snapshot renders them as ``name[label]`` so the base name stays
lintable by stripping the bracket suffix.

Snapshots are plain ``dict``s with keys in sorted order, so equal
registries always serialise identically — the determinism tests compare
them byte-for-byte across same-seed runs.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

#: Stable metric-name shape: at least two dotted lowercase components.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Diagnostic codes (``CDSS042``) live in a different namespace; a metric
#: component that case-folds onto one would make grep-ability ambiguous.
_DIAGNOSTIC_COMPONENT_RE = re.compile(r"^cdss\d+$")

_LABELLED_KEY_RE = re.compile(r"^(?P<name>[^\[\]]+)\[(?P<label>[^\[\]]+)\]$")


def validate_metric_name(name: str) -> List[str]:
    """Return the naming problems of ``name`` (empty list when clean).

    Accepts both bare names and labelled snapshot keys (``name[label]``);
    the label itself is free-form (peer names keep their case).
    """
    problems: List[str] = []
    base = name
    match = _LABELLED_KEY_RE.match(name)
    if match is not None:
        base = match.group("name")
    if not METRIC_NAME_RE.match(base):
        problems.append(
            f"{name!r}: metric names must be dotted lowercase "
            "(^[a-z][a-z0-9_]*(\\.[a-z][a-z0-9_]*)+$)"
        )
        return problems
    for component in base.split("."):
        if _DIAGNOSTIC_COMPONENT_RE.match(component):
            problems.append(
                f"{name!r}: component {component!r} collides with the "
                "CDSS diagnostic-code namespace"
            )
    return problems


def _check_name(name: str) -> str:
    problems = validate_metric_name(name)
    if problems:
        raise ValueError(problems[0])
    return name


class MetricsRegistry:
    """Counters, gauges, and histograms under stable dotted names.

    * counters are monotonic sums (``counter_add``);
    * gauges are last-write-wins values (``gauge_set`` / ``gauge_max``);
    * histograms keep deterministic aggregates only — count, total, min,
      max — flattened as ``name.count`` / ``name.total`` / ``name.min`` /
      ``name.max`` in the snapshot.

    Every mutator accepts an optional ``label`` (peer name); labelled
    series are tracked per label *and* rolled into the unlabelled total
    for counters, so ``snapshot()["net.bytes.sent"]`` is the network-wide
    figure and ``snapshot()["net.bytes.sent[Alaska]"]`` one peer's share.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, total, minimum, maximum]
        self._histograms: Dict[str, List[float]] = {}

    # -- mutators --------------------------------------------------------

    def counter_add(
        self, name: str, value: float = 1, label: Optional[str] = None
    ) -> None:
        counters = self._counters
        if name not in counters:
            _check_name(name)
        counters[name] = counters.get(name, 0) + value
        if label is not None:
            key = f"{name}[{label}]"
            counters[key] = counters.get(key, 0) + value

    def gauge_set(
        self, name: str, value: float, label: Optional[str] = None
    ) -> None:
        if name not in self._gauges:
            _check_name(name)
        key = name if label is None else f"{name}[{label}]"
        self._gauges[key] = value

    def gauge_max(
        self, name: str, value: float, label: Optional[str] = None
    ) -> None:
        if name not in self._gauges:
            _check_name(name)
        key = name if label is None else f"{name}[{label}]"
        current = self._gauges.get(key)
        if current is None or value > current:
            self._gauges[key] = value

    def observe(
        self, name: str, value: float, label: Optional[str] = None
    ) -> None:
        histograms = self._histograms
        if name not in histograms:
            _check_name(name)
        for key in (name,) if label is None else (name, f"{name}[{label}]"):
            bucket = histograms.get(key)
            if bucket is None:
                histograms[key] = [1, value, value, value]
            else:
                bucket[0] += 1
                bucket[1] += value
                if value < bucket[2]:
                    bucket[2] = value
                if value > bucket[3]:
                    bucket[3] = value

    # -- accessors -------------------------------------------------------

    def counter_value(self, name: str, label: Optional[str] = None) -> float:
        key = name if label is None else f"{name}[{label}]"
        return self._counters.get(key, 0)

    def gauge_value(self, name: str, label: Optional[str] = None) -> float:
        key = name if label is None else f"{name}[{label}]"
        return self._gauges.get(key, 0)

    def labelled_counters(self, name: str) -> Dict[str, float]:
        """``{label: value}`` for every labelled series under ``name``."""
        prefix = f"{name}["
        series: Dict[str, float] = {}
        for key in sorted(self._counters):
            if key.startswith(prefix) and key.endswith("]"):
                series[key[len(prefix) : -1]] = self._counters[key]
        return series

    def snapshot(self) -> Dict[str, float]:
        """Flat, deterministically-ordered view of every series."""
        flat: Dict[str, float] = {}
        flat.update(self._counters)
        flat.update(self._gauges)
        for name, (count, total, minimum, maximum) in self._histograms.items():
            flat[f"{name}.count"] = count
            flat[f"{name}.total"] = total
            flat[f"{name}.min"] = minimum
            flat[f"{name}.max"] = maximum
        return {key: flat[key] for key in sorted(flat)}

    def since(self, before: Dict[str, float]) -> Dict[str, float]:
        """Per-run view: cumulative series diffed against ``before``.

        Counters and histogram count/total aggregates subtract the prior
        snapshot; gauges and histogram min/max report their current value
        (a high-water mark has no meaningful difference).  Series absent
        from the diff (no movement since ``before``) are dropped.
        """
        current = self.snapshot()
        gauges = self._gauges
        view: Dict[str, float] = {}
        for key, value in current.items():
            if key in gauges or key.endswith((".min", ".max")):
                view[key] = value
            else:
                delta = value - before.get(key, 0)
                if delta:
                    view[key] = delta
        return view
