"""Deterministic span tracer driven by the virtual clock.

Spans are Chrome-trace ``"X"`` (complete) events: one dict per span with
a start timestamp and a duration, both in microseconds.  Timestamps come
from the network's :class:`~repro.p2p.network.VirtualClock` — the only
time source the simulation has — so a trace is a pure function of the
seed.  Because most compute takes *zero* virtual time, raw clock reads
collide; the tracer therefore keeps a monotonic cursor and advances it
by a sub-microsecond epsilon on every read.  Entering a span before its
children and exiting after them then guarantees strict ``ts``/``dur``
containment, which is exactly what Perfetto uses to nest same-thread
slices.

The disabled path allocates nothing: :class:`NullTracer.span` returns
the process-wide :data:`NULL_SPAN` singleton, and hot loops skip even
that call by checking ``tracer is None`` / ``tracer.enabled`` first.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry

#: Sub-microsecond tick separating events that share a virtual instant.
_EPSILON_US = 0.001


class _NullSpan:
    """Shared no-op context manager returned by the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer-shaped object whose every span is :data:`NULL_SPAN`."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **args: Any) -> _NullSpan:
        return NULL_SPAN

    def events(self) -> List[Dict[str, Any]]:
        return []


class _Span:
    """Context manager recording one complete ("X") trace event."""

    __slots__ = ("_tracer", "name", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._tracer._tick()
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        end = tracer._tick()
        event: Dict[str, Any] = {
            "name": self.name,
            "ph": "X",
            "ts": round(self._start, 3),
            "dur": round(end - self._start, 3),
            "pid": 1,
            "tid": 1,
        }
        if self.args:
            event["args"] = self.args
        tracer._events.append(event)
        return False


class Tracer:
    """Records nested spans with deterministic virtual-time stamps.

    ``clock`` is any object with a ``now`` attribute in (virtual)
    seconds; ``None`` falls back to a pure logical timeline where only
    the epsilon cursor advances.  Span ``args`` must already be
    JSON-serialisable and deterministic (no ids, no wall-clock).
    """

    __slots__ = ("_clock", "_events", "_cursor")
    enabled = True

    def __init__(self, clock: Optional[Any] = None) -> None:
        self._clock = clock
        self._events: List[Dict[str, Any]] = []
        self._cursor = 0.0

    def _tick(self) -> float:
        base = 0.0
        if self._clock is not None:
            base = self._clock.now * 1_000_000.0
        cursor = self._cursor + _EPSILON_US
        if base > cursor:
            cursor = base
        self._cursor = cursor
        return cursor

    def span(self, name: str, **args: Any) -> _Span:
        return _Span(self, name, args)

    def events(self) -> List[Dict[str, Any]]:
        """Completed events, in exit order (children before parents)."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._cursor = 0.0


class Observability:
    """One holder threaded through every layer: metrics + optional tracer.

    The registry is always live (its cost is a few dict updates); the
    tracer slot is ``None`` until tracing is requested, and components
    re-read it at call time so ``cdss.sync(trace=True)`` can install a
    tracer on an already-built network.
    """

    __slots__ = ("metrics", "tracer")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer

    def span(self, name: str, **args: Any) -> Any:
        """Span under the current tracer, or the shared no-op span."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return NULL_SPAN
        return tracer.span(name, **args)

    def active_tracer(self) -> Optional[Tracer]:
        """The tracer when enabled, else ``None`` (hot-path pre-check)."""
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer
        return None
