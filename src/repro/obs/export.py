"""Trace and metrics exports: Chrome trace-event JSON + validators.

The trace format is the Chrome/Perfetto *JSON Array Format* restricted
to complete (``"ph": "X"``) events inside a ``{"traceEvents": [...]}``
envelope — open the file at https://ui.perfetto.dev (or
``chrome://tracing``) to get the flame view.  Serialisation is
canonical (sorted keys, no whitespace) so byte-identical traces are the
determinism oracle, not just semantically-equal ones.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .metrics import validate_metric_name

_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def chrome_trace(tracer: Any) -> Dict[str, Any]:
    """The Chrome trace-event envelope for a tracer's recorded spans."""
    return {
        "displayTimeUnit": "ms",
        "traceEvents": tracer.events(),
    }


def trace_json(tracer: Any) -> str:
    """Canonical (byte-stable) JSON serialisation of the trace."""
    return json.dumps(chrome_trace(tracer), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(tracer: Any, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_json(tracer))
        handle.write("\n")


def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema problems of a parsed trace payload (empty when valid).

    Checks the envelope, the per-event required keys for complete
    events, timestamp sanity (non-negative ``ts``, positive ``dur``),
    and that ``args`` — when present — is a JSON object.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["trace payload must be a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["trace payload must carry a 'traceEvents' array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: events must be objects")
            continue
        if event.get("ph") != "X":
            problems.append(f"{where}: expected a complete ('X') event")
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"{where}: missing required key {key!r}")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: 'name' must be a non-empty string")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur <= 0:
            problems.append(f"{where}: 'dur' must be a positive number")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object when present")
    return problems


def validate_metric_keys(snapshot: Dict[str, Any]) -> List[str]:
    """Naming problems across every key of a metrics snapshot."""
    problems: List[str] = []
    for key in sorted(snapshot):
        problems.extend(validate_metric_name(key))
    return problems
