"""Unified observability: structured tracing + a shared metrics registry.

Every subsystem (sync orchestration, update exchange, both datalog
executors, the distributed store, gossip reconciliation, provenance
circuits) emits into one :class:`Observability` holder:

* :class:`MetricsRegistry` — counters / gauges / histograms under stable
  dotted-lowercase names, flattened to a deterministic ``snapshot()``
  dict that is merged into ``SyncReport.metrics`` and the benchmark
  reporting tables;
* :class:`Tracer` — nested spans (``sync.round`` → ``publish`` /
  ``reconcile`` → ``exchange.stratum`` → ``rule.fire``,
  ``store.quorum_read``/``store.quorum_write``, ``gossip.session``,
  ``sketch.decode``, ``circuit.evaluate``) stamped from the network's
  :class:`~repro.p2p.network.VirtualClock`, so two runs of the same seed
  produce **byte-identical** Chrome-trace JSON;
* :data:`NULL_SPAN` / :class:`NullTracer` — the disabled path: a single
  shared no-op context manager, no per-call allocation.

Exports live in :mod:`repro.obs.export`: Chrome-trace-event JSON
(loadable in Perfetto via ``ui.perfetto.dev`` → *Open trace file*) plus
schema and metric-name validators used by CI.
"""

from .export import (
    chrome_trace,
    trace_json,
    validate_chrome_trace,
    validate_metric_keys,
    write_chrome_trace,
)
from .metrics import METRIC_NAME_RE, MetricsRegistry, validate_metric_name
from .tracer import NULL_SPAN, NullTracer, Observability, Tracer

__all__ = [
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullTracer",
    "Observability",
    "Tracer",
    "chrome_trace",
    "trace_json",
    "validate_chrome_trace",
    "validate_metric_keys",
    "validate_metric_name",
    "write_chrome_trace",
]
