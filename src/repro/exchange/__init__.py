"""The update-exchange engine.

Update exchange (companion paper [5] of the demo) is the step that takes the
transactions published by all peers and translates them, along the declarative
schema mappings, into each peer's local schema — maintaining provenance so
that reconciliation can later evaluate trust policies, and doing so
incrementally so that each reconciliation only processes newly published
updates.

* :mod:`repro.exchange.rules` compiles the catalogue's mappings into a datalog
  program over peer-qualified relation names,
* :mod:`repro.exchange.engine` maintains, per reconciling peer, the
  incrementally-evaluated translated instance and its provenance graph,
* :mod:`repro.exchange.translation` turns the per-transaction deltas computed
  by the engine into candidate transactions in the target schema, and
* :mod:`repro.exchange.migration` performs an initial bulk migration of
  pre-existing data along the mappings.
"""

from .engine import ExchangeEngine, TranslationDelta
from .migration import migrate_instance
from .rules import compile_mappings, published_relation, qualify_atom
from .translation import CandidateTransaction, UpdateTranslator

__all__ = [
    "CandidateTransaction",
    "ExchangeEngine",
    "TranslationDelta",
    "UpdateTranslator",
    "compile_mappings",
    "migrate_instance",
    "published_relation",
    "qualify_atom",
]
