"""Turning per-transaction exchange deltas into candidate transactions.

A :class:`TranslationDelta` says which tuples appeared/disappeared at each
peer because of one published transaction.  :class:`UpdateTranslator` converts
the slice of that delta belonging to one reconciling peer into a
:class:`CandidateTransaction`: the translated updates expressed in the peer's
own schema, carrying the original transaction's identity, origin and
antecedents so that reconciliation can reason about dependencies and trust.

Deletion+insertion pairs on the same key are re-assembled into modifications,
matching the paper's treatment of a modification as an atomic replacement of
one tuple by another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.schema import PeerSchema
from ..core.transactions import Transaction
from ..core.updates import Update
from .engine import TranslationDelta


@dataclass(frozen=True)
class CandidateTransaction:
    """A published transaction translated into one peer's schema.

    Attributes:
        txn_id: Identifier of the original transaction.
        origin: Peer where the original transaction was committed.
        target_peer: The peer whose schema the updates are expressed in.
        updates: Translated updates (insertions, deletions, modifications).
        antecedents: Antecedent transaction ids of the original transaction.
        epoch: Publication epoch of the original transaction.
    """

    txn_id: str
    origin: str
    target_peer: str
    updates: tuple[Update, ...]
    antecedents: frozenset[str] = frozenset()
    epoch: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "updates", tuple(self.updates))
        object.__setattr__(self, "antecedents", frozenset(self.antecedents))

    @property
    def is_empty(self) -> bool:
        """True when the transaction has no effect in the target schema."""
        return not self.updates

    def relations(self) -> set[str]:
        return {update.relation for update in self.updates}

    def describe(self) -> str:
        parts = "; ".join(update.describe() for update in self.updates)
        return f"{self.txn_id} (from {self.origin}) -> {self.target_peer}: [{parts}]"

    def __str__(self) -> str:
        return self.describe()


class UpdateTranslator:
    """Builds candidate transactions for a reconciling peer from exchange deltas."""

    def __init__(self, target_peer: str, schema: PeerSchema) -> None:
        self._target_peer = target_peer
        self._schema = schema

    @property
    def target_peer(self) -> str:
        return self._target_peer

    def translate(
        self, transaction: Transaction, delta: TranslationDelta
    ) -> CandidateTransaction:
        """Translate one published transaction for the target peer."""
        inserted = [
            (relation, values)
            for relation, values in delta.inserted.get(self._target_peer, [])
            if self._schema.has_relation(relation)
        ]
        deleted = [
            (relation, values)
            for relation, values in delta.deleted.get(self._target_peer, [])
            if self._schema.has_relation(relation)
        ]
        updates = self._assemble_updates(inserted, deleted, origin=transaction.peer)
        return CandidateTransaction(
            txn_id=transaction.txn_id,
            origin=transaction.peer,
            target_peer=self._target_peer,
            updates=tuple(updates),
            antecedents=transaction.antecedents,
            epoch=delta.epoch or transaction.epoch,
        )

    def translate_many(
        self,
        transactions: Iterable[Transaction],
        deltas_by_txn: dict[str, TranslationDelta],
    ) -> list[CandidateTransaction]:
        """Translate a batch of transactions (missing deltas are skipped)."""
        candidates = []
        for transaction in transactions:
            delta = deltas_by_txn.get(transaction.txn_id)
            if delta is None:
                continue
            candidates.append(self.translate(transaction, delta))
        return candidates

    # -- helpers -------------------------------------------------------------
    def _assemble_updates(
        self,
        inserted: list[tuple[str, tuple]],
        deleted: list[tuple[str, tuple]],
        origin: str,
    ) -> list[Update]:
        """Pair deletions with insertions on the same key into modifications."""
        updates: list[Update] = []
        remaining_inserts = list(inserted)

        for relation, old_values in deleted:
            relation_schema = self._schema.relation(relation)
            old_key = relation_schema.key_of(old_values)
            match_index: Optional[int] = None
            for index, (candidate_relation, new_values) in enumerate(remaining_inserts):
                if candidate_relation != relation:
                    continue
                if relation_schema.key_of(new_values) == old_key:
                    match_index = index
                    break
            if match_index is not None:
                _, new_values = remaining_inserts.pop(match_index)
                updates.append(
                    Update.modify(relation, old_values, new_values, origin=origin)
                )
            else:
                updates.append(Update.delete(relation, old_values, origin=origin))

        for relation, values in remaining_inserts:
            updates.append(Update.insert(relation, values, origin=origin))
        return updates
