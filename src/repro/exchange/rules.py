"""Compiling schema mappings into the update-exchange datalog program.

The program works over *peer-qualified* relation names so that identically
named relations at different peers stay distinct:

* ``Peer.R!pub`` — the extensional relation holding the tuples that ``Peer``
  has published for its relation ``R`` (its public contributions),
* ``Peer.R`` — the intensional relation holding everything visible at
  ``Peer`` in relation ``R``: its own published contributions plus whatever
  the mappings derive from other peers.

For every peer relation we emit the *contribution rule*::

    Peer.R(x̄) :- Peer.R!pub(x̄).            (label: pub_Peer_R)

and for every mapping ``m : body@source -> head@target`` one rule per head
atom, with body atoms qualified by the source peer, head atoms by the target
peer, and existential variables skolemised::

    Target.H(..., SK_m_v(...), ...) :- Source.B1(...), Source.B2(...), ...
                                        (label: m)

Because mappings may form cycles (Figure 2 maps Σ1 → Σ2 → Σ1), the resulting
program is recursive; the datalog engine's fixpoint evaluation handles this,
and skolemisation guarantees termination since labelled nulls are functions of
existing values only.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.mapping import Mapping
from ..core.schema import PeerSchema
from ..datalog.ast import Atom, Program, Rule, Variable
from ..datalog.skolem import SkolemFactory, skolemize_head

#: Suffix separating a peer's published (extensional) contributions from the
#: derived relation of the same name.
PUBLISHED_SUFFIX = "!pub"


def published_relation(peer: str, relation: str) -> str:
    """Name of the extensional relation holding ``peer``'s published tuples."""
    return f"{peer}.{relation}{PUBLISHED_SUFFIX}"


def derived_relation(peer: str, relation: str) -> str:
    """Name of the derived (visible) relation ``relation`` at ``peer``."""
    return f"{peer}.{relation}"


def split_derived(name: str) -> tuple[str, str]:
    """Inverse of :func:`derived_relation` (``"Crete.OPS"`` -> ``("Crete", "OPS")``)."""
    peer, _, relation = name.partition(".")
    return peer, relation


def is_published_relation(name: str) -> bool:
    return name.endswith(PUBLISHED_SUFFIX)


def qualify_atom(atom: Atom, peer: str) -> Atom:
    """Qualify an unqualified mapping atom with a peer name."""
    return Atom(derived_relation(peer, atom.predicate), atom.terms, negated=atom.negated)


def contribution_rules(peer_name: str, schema: PeerSchema) -> list[Rule]:
    """The ``Peer.R(x̄) :- Peer.R!pub(x̄)`` rule for every relation of a peer."""
    rules = []
    for relation in schema:
        variables = tuple(Variable(f"x{i}") for i in range(relation.arity))
        head = Atom(derived_relation(peer_name, relation.name), variables)
        body = Atom(published_relation(peer_name, relation.name), variables)
        rules.append(Rule(head, (body,), label=f"pub_{peer_name}_{relation.name}"))
    return rules


def mapping_rules(mapping: Mapping, factory: SkolemFactory) -> list[Rule]:
    """Compile one mapping into qualified, skolemised datalog rules."""
    qualified_body = tuple(qualify_atom(atom, mapping.source_peer) for atom in mapping.body)
    qualified_heads = [qualify_atom(atom, mapping.target_peer) for atom in mapping.heads]

    body_variables: set[Variable] = set()
    for atom in qualified_body:
        body_variables.update(atom.variables())

    skolemised_heads = skolemize_head(
        qualified_heads, body_variables, mapping.mapping_id, factory
    )
    rules = []
    for head in skolemised_heads:
        rule = Rule(head, qualified_body, label=mapping.mapping_id)
        rule.validate()
        rules.append(rule)
    return rules


def compile_mappings(
    peers: Iterable[tuple[str, PeerSchema]],
    mappings: Sequence[Mapping],
    factory: SkolemFactory | None = None,
) -> Program:
    """Build the full update-exchange program for a set of peers and mappings.

    Args:
        peers: ``(peer name, schema)`` pairs for every participant.
        mappings: Every registered schema mapping.
        factory: Skolem factory (a fresh one is created when omitted).

    Returns:
        A validated datalog :class:`Program` ready for (incremental)
        evaluation by the exchange engine.
    """
    factory = factory or SkolemFactory()
    program = Program()
    for peer_name, schema in peers:
        for rule in contribution_rules(peer_name, schema):
            program.add(rule)
    for mapping in mappings:
        for rule in mapping_rules(mapping, factory):
            program.add(rule)
    return program
