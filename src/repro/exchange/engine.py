"""The incremental update-exchange engine.

The engine owns the compiled mapping program and a single incrementally
maintained database of *published* data: every transaction published anywhere
in the system is processed exactly once, in publication (epoch) order.  For
each processed transaction the engine records a :class:`TranslationDelta` —
exactly which tuples appeared or disappeared in every peer's derived
relations because of that transaction.  Reconciliation later converts these
deltas into candidate transactions for the reconciling peer.

Provenance is recorded during evaluation (unless disabled), which lets trust
conditions be evaluated over the origin of derived tuples and lets deletions
be propagated precisely (a derived tuple disappears only when it loses *all*
support).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import ExchangeConfig
from ..core.transactions import Transaction
from ..core.updates import UpdateKind
from ..datalog.ast import Fact, Program
from ..datalog.incremental import IncrementalEngine
from ..errors import PublicationError
from ..obs import Observability
from ..provenance.graph import ProvenanceGraph
from .rules import derived_relation, published_relation, split_derived, is_published_relation


@dataclass
class TranslationDelta:
    """The effect of one published transaction on every peer's derived relations.

    ``inserted``/``deleted`` map a peer name to the list of
    ``(relation, tuple)`` pairs that appeared/disappeared in that peer's
    schema when the transaction was folded into the published state.
    """

    txn_id: str
    origin: str
    epoch: int
    inserted: dict[str, list[tuple[str, tuple]]] = field(default_factory=dict)
    deleted: dict[str, list[tuple[str, tuple]]] = field(default_factory=dict)

    def affected_peers(self) -> set[str]:
        return set(self.inserted) | set(self.deleted)

    def is_empty_for(self, peer: str) -> bool:
        return not self.inserted.get(peer) and not self.deleted.get(peer)

    def change_count(self) -> int:
        total = sum(len(changes) for changes in self.inserted.values())
        total += sum(len(changes) for changes in self.deleted.values())
        return total


class ExchangeEngine:
    """Processes published transactions and records their per-peer deltas."""

    def __init__(
        self,
        program: Program,
        config: Optional[ExchangeConfig] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        self._config = config or ExchangeConfig()
        self._program = program
        self._obs = observability if observability is not None else Observability()
        self._engine = IncrementalEngine(
            program,
            track_provenance=self._config.track_provenance,
            provenance_mode=self._config.provenance_mode,
            execution_backend=self._config.execution_backend,
            observability=self._obs,
        )
        self._deltas: dict[str, TranslationDelta] = {}
        self._processed_order: list[str] = []
        # High-water marks of the executor counters already mirrored into
        # the metrics registry (the ``exchange.*`` series); the executor's
        # ``ExecutionStats`` are cumulative, so each mirror pass adds only
        # the movement since the last one.
        self._mirrored_stats: dict[str, int] = {
            "rules_fired": 0,
            "tuples_derived": 0,
            "rounds": 0,
        }
        # The registry outlives engine rebuilds (CDSS recreates the engine
        # on schema changes); remembering the counters at construction
        # keeps ``statistics()`` scoped to *this* engine's work while the
        # registry stays cumulative system-wide.
        self._registry_baseline: dict[str, float] = {
            name: self._obs.metrics.counter_value(f"exchange.{name}")
            for name in self._mirrored_stats
        }

    # -- accessors ---------------------------------------------------------
    @property
    def program(self) -> Program:
        return self._program

    @property
    def config(self) -> ExchangeConfig:
        return self._config

    @property
    def provenance(self) -> Optional[ProvenanceGraph]:
        return self._engine.graph

    @property
    def database(self):
        """The materialised database of published and derived relations."""
        return self._engine.database

    @property
    def compiled_program(self):
        """The compiled join plans the engine executes (shared via the plan cache)."""
        return self._engine.compiled

    @property
    def execution_stats(self):
        """Cumulative executor counters (rule firings, derived tuples, rounds)."""
        return self._engine.stats

    @property
    def backend(self):
        """The execution strategy firing the compiled plans (python or sql)."""
        return self._engine.backend

    @property
    def base_database(self):
        """Only the published (extensional) facts currently asserted."""
        return self._engine.base

    def reference_database(self):
        """From-scratch recomputation of the derived state (non-mutating).

        Differential-testing oracle: must equal :attr:`database` after any
        stream of processed transactions if incremental maintenance is
        correct.
        """
        return self._engine.reference_database()

    def processed_transactions(self) -> list[str]:
        """Transaction ids in the order they were folded into the engine."""
        return list(self._processed_order)

    def has_processed(self, txn_id: str) -> bool:
        return txn_id in self._deltas

    def delta_for(self, txn_id: str) -> TranslationDelta:
        try:
            return self._deltas[txn_id]
        except KeyError:
            raise PublicationError(
                f"transaction {txn_id!r} has not been processed by the exchange engine"
            ) from None

    def derived_tuples(self, peer: str, relation: str) -> frozenset[tuple]:
        """Everything currently derivable in ``relation`` at ``peer``."""
        return self._engine.database.relation(derived_relation(peer, relation))

    def published_tuples(self, peer: str, relation: str) -> frozenset[tuple]:
        """The tuples ``peer`` itself has published for ``relation``."""
        return self._engine.database.relation(published_relation(peer, relation))

    # -- processing -------------------------------------------------------------
    def process_transaction(self, transaction: Transaction) -> TranslationDelta:
        """Fold one published transaction into the engine and record its delta.

        Transactions must be processed in publication order; processing the
        same transaction twice raises :class:`PublicationError`.
        """
        if transaction.txn_id in self._deltas:
            raise PublicationError(
                f"transaction {transaction.txn_id!r} was already processed"
            )

        insert_facts: list[Fact] = []
        delete_facts: list[Fact] = []
        origin = transaction.peer
        for update in transaction.updates:
            relation = published_relation(origin, update.relation)
            if update.kind is UpdateKind.INSERT:
                insert_facts.append(Fact(relation, update.values))
            elif update.kind is UpdateKind.DELETE:
                delete_facts.append(Fact(relation, update.values))
            else:  # MODIFY
                delete_facts.append(Fact(relation, update.old_values or ()))
                insert_facts.append(Fact(relation, update.values))

        inserted: dict[str, list[tuple[str, tuple]]] = defaultdict(list)
        deleted: dict[str, list[tuple[str, tuple]]] = defaultdict(list)

        with self._obs.span(
            "exchange.txn", txn=transaction.txn_id, origin=origin
        ):
            if delete_facts:
                result = self._engine.apply_deletions(delete_facts)
                self._collect(result.deleted, deleted)
            if insert_facts:
                result = self._engine.apply_insertions(insert_facts)
                self._collect(result.inserted, inserted)
            if not self._config.incremental:
                # Ablation baseline (ABL-INCREMENTAL): rebuild the derived
                # state from the base facts after every transaction instead
                # of relying on the propagated deltas.  The deltas reported
                # above are unchanged — only the maintenance cost differs.
                self._engine.recompute()

        delta = TranslationDelta(
            txn_id=transaction.txn_id,
            origin=origin,
            epoch=transaction.epoch,
            inserted=dict(inserted),
            deleted=dict(deleted),
        )
        self._deltas[transaction.txn_id] = delta
        self._processed_order.append(transaction.txn_id)
        metrics = self._obs.metrics
        metrics.counter_add("exchange.transactions", 1, label=origin)
        insertions = sum(len(changes) for changes in inserted.values())
        deletions = sum(len(changes) for changes in deleted.values())
        if insertions:
            metrics.counter_add("exchange.delta.insertions", insertions)
        if deletions:
            metrics.counter_add("exchange.delta.deletions", deletions)
        self._mirror_execution_stats()
        return delta

    def process_transactions(
        self, transactions: Iterable[Transaction]
    ) -> list[TranslationDelta]:
        return [self.process_transaction(transaction) for transaction in transactions]

    @staticmethod
    def _collect(
        changes: dict[str, set[tuple]],
        accumulator: dict[str, list[tuple[str, tuple]]],
    ) -> None:
        """Group engine-level changes (qualified names) by target peer."""
        for qualified, tuples in changes.items():
            if is_published_relation(qualified):
                continue
            peer, relation = split_derived(qualified)
            for values in sorted(tuples, key=repr):
                accumulator[peer].append((relation, values))

    # -- full recomputation (ablation baseline) -----------------------------------
    def recompute(self) -> None:
        """Recompute the derived state from scratch (ablation baseline)."""
        self._engine.recompute()

    def _mirror_execution_stats(self) -> None:
        """Fold executor-counter movement into the ``exchange.*`` metrics.

        Both execution backends account into the same cumulative
        :class:`~repro.datalog.executor.ExecutionStats`, so this single
        mirror covers the Python closure executor and the SQL pushdown
        alike — the registry is where their counts are compared.
        """
        stats = self._engine.stats
        metrics = self._obs.metrics
        mirrored = self._mirrored_stats
        for name in ("rules_fired", "tuples_derived", "rounds"):
            current = getattr(stats, name)
            moved = current - mirrored[name]
            if moved:
                metrics.counter_add(f"exchange.{name}", moved)
                mirrored[name] = current

    def statistics(self) -> dict[str, int]:
        """Engine-level counters used by the benchmarks.

        The executor counters are served from the shared metrics registry
        (the ``exchange.*`` series) — a thin view kept in lockstep with the
        raw :class:`~repro.datalog.executor.ExecutionStats` by
        :meth:`_mirror_execution_stats`.
        """
        graph = self._engine.graph
        tuple_nodes, derivation_nodes = graph.size() if graph is not None else (0, 0)
        circuit_nodes, circuit_edges = (
            graph.circuit_size() if graph is not None else (0, 0)
        )
        self._mirror_execution_stats()
        metrics = self._obs.metrics
        metrics.gauge_set("exchange.database_tuples", len(self._engine.database))
        metrics.gauge_set("provenance.circuit.nodes", circuit_nodes)
        metrics.gauge_set("provenance.circuit.edges", circuit_edges)
        lookups = metrics.counter_value("provenance.circuit.memo_lookups")
        if lookups:
            metrics.gauge_set(
                "provenance.circuit.memo_hit_rate",
                metrics.counter_value("provenance.circuit.memo_hits") / lookups,
            )
        return {
            "processed_transactions": len(self._processed_order),
            "database_tuples": len(self._engine.database),
            "provenance_tuple_nodes": tuple_nodes,
            "provenance_derivations": derivation_nodes,
            "provenance_circuit_nodes": circuit_nodes,
            "provenance_circuit_edges": circuit_edges,
            "rules_fired": int(
                metrics.counter_value("exchange.rules_fired")
                - self._registry_baseline["rules_fired"]
            ),
            "tuples_derived": int(
                metrics.counter_value("exchange.tuples_derived")
                - self._registry_baseline["tuples_derived"]
            ),
        }
