"""Initial data migration along mappings.

When a peer joins the CDSS with pre-existing local data (the common case for
the bioinformatics sources the paper motivates), that data must be made
visible to the rest of the system before incremental update exchange can take
over.  The migration helper wraps the peer's current instance into one large
initial transaction, which the system then publishes and exchanges exactly
like any other transaction — so the initial import shares the code path (and
provenance handling) of regular updates.
"""

from __future__ import annotations

from typing import Optional

from ..core.peer import Peer
from ..core.transactions import Transaction
from ..core.updates import Update


def migrate_instance(peer: Peer, txn_id: Optional[str] = None) -> Optional[Transaction]:
    """Build the initial-import transaction for a peer's current instance.

    Returns ``None`` when the instance is empty.  The returned transaction is
    *not* committed to the peer (its tuples are already present locally); the
    caller appends it to the peer's update log so that the next publication
    ships it to the rest of the system.
    """
    updates: list[Update] = []
    for relation in peer.schema:
        for values in sorted(peer.instance.scan(relation.name), key=repr):
            updates.append(Update.insert(relation.name, values, origin=peer.name))
    if not updates:
        return None
    identifier = txn_id or f"{peer.name}-initial-import"
    transaction = Transaction(identifier, peer.name, tuple(updates))
    for update in updates:
        peer.record_producer(update.relation, update.values, identifier)
    return transaction
