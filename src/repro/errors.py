"""Exception hierarchy for the ORCHESTRA CDSS reproduction.

Every exception raised by the library derives from :class:`ReproError` so that
callers can catch all library failures with a single handler while still being
able to discriminate the subsystem that failed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceSpan:
    """A location in a spec or datalog source text.

    Lines and columns are 1-based.  ``source`` names the origin (a file path
    or a label like ``"<spec>"``) when known.  Spans are attached to parsed
    atoms, rules, mappings and spec declarations so that static-analysis
    diagnostics (:mod:`repro.analysis`) can point at the offending line.
    """

    line: int
    column: int = 1
    end_line: Optional[int] = None
    end_column: Optional[int] = None
    source: Optional[str] = None

    def shifted(self, line_offset: int, source: Optional[str] = None) -> "SourceSpan":
        """Return a copy moved down by ``line_offset`` lines.

        Used when a datalog fragment is embedded inside a larger document
        (e.g. a ``mapping`` clause inside a network spec) and the fragment
        parser counted lines from 1.
        """
        return SourceSpan(
            line=self.line + line_offset,
            column=self.column,
            end_line=None if self.end_line is None else self.end_line + line_offset,
            end_column=self.end_column,
            source=source if source is not None else self.source,
        )

    def __str__(self) -> str:
        origin = self.source or "<input>"
        return f"{origin}:{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library.

    Errors may carry a stable diagnostic ``code`` (``CDSS0xx``, see
    :mod:`repro.analysis.codes`) and a :class:`SourceSpan` pointing at the
    offending spec/program location, so that build-time failures and
    lint-time diagnostics agree on identity and position.
    """

    def __init__(
        self,
        *args: object,
        code: Optional[str] = None,
        span: Optional[SourceSpan] = None,
    ) -> None:
        super().__init__(*args)
        self.code = code
        self.span = span

    def __str__(self) -> str:
        base = super().__str__()
        if self.code:
            return f"[{self.code}] {base}"
        return base


class SchemaError(ReproError):
    """A relation schema or peer schema is malformed or violated."""


class TupleArityError(SchemaError):
    """A tuple's arity does not match its relation schema."""


class UnknownRelationError(SchemaError):
    """A referenced relation does not exist in the schema or instance."""


class MappingError(ReproError):
    """A schema mapping is malformed (unsafe variables, unknown relations)."""


class DatalogError(ReproError):
    """Base class for errors raised by the datalog engine."""


class DatalogParseError(DatalogError):
    """A datalog rule, atom or fact could not be parsed.

    Carries the 1-based ``line``/``column`` of the offending token when the
    parser knows them (also exposed via :attr:`span`).
    """

    def __init__(
        self,
        *args: object,
        code: Optional[str] = None,
        span: Optional[SourceSpan] = None,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ) -> None:
        if span is None and line is not None:
            span = SourceSpan(line=line, column=column if column is not None else 1)
        super().__init__(*args, code=code, span=span)
        self.line = span.line if span is not None else None
        self.column = span.column if span is not None else None


class UnsafeRuleError(DatalogError):
    """A rule uses a variable in its head or a negated atom that is not bound
    by a positive body atom."""


class StratificationError(DatalogError):
    """The rule program cannot be stratified (negation through recursion)."""


class ProvenanceError(ReproError):
    """Provenance annotations are inconsistent or an operation on them failed."""


class SemiringError(ProvenanceError):
    """A semiring operation was applied to incompatible values."""


class StorageError(ReproError):
    """A storage backend failed or was used incorrectly."""


class TransactionError(ReproError):
    """A transaction or update is malformed, or transaction dependencies are
    inconsistent (for example, a cycle among antecedents)."""


class PublicationError(ReproError):
    """Publishing transactions to the shared update store failed."""


class QuorumError(PublicationError):
    """The distributed update store could not reach enough shard replicas to
    serve a read or accept a write (every replica host of a shard is
    offline)."""


class SketchError(ReproError):
    """A set-reconciliation sketch could not decode the symmetric difference
    (more differing elements than its capacity, or a cell-hash collision).
    Callers grow the sketch and retry, then fall back to cursor replay —
    decode failure is a cost signal, never a correctness problem."""


class ReconciliationError(ReproError):
    """The reconciliation algorithm was given inconsistent inputs or asked to
    resolve a conflict that does not exist."""


class TrustError(ReproError):
    """A trust condition is malformed or refers to unknown peers/relations."""


class PeerError(ReproError):
    """A peer is unknown, duplicated, or in an invalid state for the
    requested operation (for example, reconciling while disconnected)."""


class NetworkError(ReproError):
    """The simulated peer-to-peer network refused an operation, typically
    because the requesting peer is offline."""


class ConfigurationError(ReproError):
    """An engine or system configuration value is invalid."""


class SpecError(ReproError):
    """A declarative network specification (or the fluent builder state it
    describes) is malformed: unknown peers, duplicate declarations, trust
    entries for unregistered participants, or unserializable policies."""


class SyncError(ReproError):
    """The sync orchestration could not reach quiescence within its round
    budget, or there were no peers to synchronize.  (Unknown peer names
    raise :class:`PeerError`, matching the rest of the facade.)

    When raised at the round budget, :attr:`report` carries the partial
    :class:`~repro.api.sync.SyncReport` for the rounds that did run, so
    non-convergence is diagnosable without re-running the campaign.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report
