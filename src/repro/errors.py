"""Exception hierarchy for the ORCHESTRA CDSS reproduction.

Every exception raised by the library derives from :class:`ReproError` so that
callers can catch all library failures with a single handler while still being
able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation schema or peer schema is malformed or violated."""


class TupleArityError(SchemaError):
    """A tuple's arity does not match its relation schema."""


class UnknownRelationError(SchemaError):
    """A referenced relation does not exist in the schema or instance."""


class MappingError(ReproError):
    """A schema mapping is malformed (unsafe variables, unknown relations)."""


class DatalogError(ReproError):
    """Base class for errors raised by the datalog engine."""


class DatalogParseError(DatalogError):
    """A datalog rule, atom or fact could not be parsed."""


class UnsafeRuleError(DatalogError):
    """A rule uses a variable in its head or a negated atom that is not bound
    by a positive body atom."""


class StratificationError(DatalogError):
    """The rule program cannot be stratified (negation through recursion)."""


class ProvenanceError(ReproError):
    """Provenance annotations are inconsistent or an operation on them failed."""


class SemiringError(ProvenanceError):
    """A semiring operation was applied to incompatible values."""


class StorageError(ReproError):
    """A storage backend failed or was used incorrectly."""


class TransactionError(ReproError):
    """A transaction or update is malformed, or transaction dependencies are
    inconsistent (for example, a cycle among antecedents)."""


class PublicationError(ReproError):
    """Publishing transactions to the shared update store failed."""


class QuorumError(PublicationError):
    """The distributed update store could not reach enough shard replicas to
    serve a read or accept a write (every replica host of a shard is
    offline)."""


class SketchError(ReproError):
    """A set-reconciliation sketch could not decode the symmetric difference
    (more differing elements than its capacity, or a cell-hash collision).
    Callers grow the sketch and retry, then fall back to cursor replay —
    decode failure is a cost signal, never a correctness problem."""


class ReconciliationError(ReproError):
    """The reconciliation algorithm was given inconsistent inputs or asked to
    resolve a conflict that does not exist."""


class TrustError(ReproError):
    """A trust condition is malformed or refers to unknown peers/relations."""


class PeerError(ReproError):
    """A peer is unknown, duplicated, or in an invalid state for the
    requested operation (for example, reconciling while disconnected)."""


class NetworkError(ReproError):
    """The simulated peer-to-peer network refused an operation, typically
    because the requesting peer is offline."""


class ConfigurationError(ReproError):
    """An engine or system configuration value is invalid."""


class SpecError(ReproError):
    """A declarative network specification (or the fluent builder state it
    describes) is malformed: unknown peers, duplicate declarations, trust
    entries for unregistered participants, or unserializable policies."""


class SyncError(ReproError):
    """The sync orchestration could not reach quiescence within its round
    budget, or there were no peers to synchronize.  (Unknown peer names
    raise :class:`PeerError`, matching the rest of the facade.)

    When raised at the round budget, :attr:`report` carries the partial
    :class:`~repro.api.sync.SyncReport` for the rounds that did run, so
    non-convergence is diagnosable without re-running the campaign.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report
