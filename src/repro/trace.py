"""Command-line trace capture for CDSS runs.

Runs a workload with the observability layer forced on and writes the
resulting span tree as Chrome-trace-event JSON (loadable in Perfetto or
``chrome://tracing``)::

    python -m repro.trace --figure2 --out trace.json
    python -m repro.trace --figure2 --metrics
    python -m repro.trace network.spec --seed 7 --out spec-trace.json

``--figure2`` drives the built-in Figure-2 bioinformatics network end to
end — pre-CDSS data import, two sync phases with fresh insertions in
between — over a distributed store with gossip anti-entropy, so the trace
covers the whole span taxonomy: ``sync.round`` > ``publish``/``reconcile``
> ``exchange.stratum`` > ``rule.fire``, plus ``store.quorum_read``/
``store.quorum_write``, ``gossip.session`` and ``sketch.decode``.

Spec paths are built with ``CDSS.from_spec`` (tracing force-installed) and
synchronized once; with no workload data the trace shows the control-flow
skeleton only.

Every timestamp comes from the network's virtual clock, so the same seed
always produces byte-identical output — the determinism test diffs two
runs of this module's entry points directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from .config import StoreConfig, SystemConfig
from .obs import chrome_trace, trace_json, validate_chrome_trace, validate_metric_keys

#: Generator/latency seed shared by every ``--figure2`` invocation.
DEFAULT_SEED = 42


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Run a CDSS workload and export its Chrome-trace-event JSON.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="network spec files to build and synchronize under tracing",
    )
    parser.add_argument(
        "--figure2",
        action="store_true",
        help="run the built-in Figure 2 bioinformatics workload",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the Chrome trace JSON here (default: print a summary only)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the flat metrics snapshot as JSON",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"data-generator and latency seed (default {DEFAULT_SEED})",
    )
    return parser


def run_figure2(seed: int = DEFAULT_SEED):
    """Drive the Figure-2 network under full tracing; returns the CDSS.

    Distributed store + gossip catch-up put every span family on the
    trace; the seeded generator and latency model make the run (and so
    the exported JSON) a pure function of ``seed``.
    """
    from .p2p.network import LatencyModel
    from .workloads.bioinformatics import BioDataGenerator, build_figure2_network

    config = SystemConfig.default()
    config = replace(
        config,
        store=replace(
            config.store,
            backend="distributed",
            sync_mode="gossip",
            observability="trace",
        ),
    )
    network = build_figure2_network(config)
    cdss = network.cdss
    cdss.network.set_latency_model(LatencyModel(seed=seed))

    generator = BioDataGenerator(seed=seed)
    generator.load_sigma1(network.alaska, organisms=4, proteins=5, sequences_per_pair=0.5)
    generator.load_sigma2(network.dresden, pairs=3)
    cdss.import_existing_data(network.alaska.name)
    cdss.import_existing_data(network.dresden.name)
    cdss.sync()
    generator.insertion_transactions(network.beijing, count=2, start_index=50)
    cdss.sync()
    return cdss


def run_spec(source: str, seed: int = DEFAULT_SEED):
    """Build a spec'd network, force tracing on, and synchronize once."""
    from .api.builder import build_network
    from .p2p.network import LatencyModel

    config = SystemConfig.default()
    config = replace(config, store=replace(config.store, observability="trace"))
    cdss = build_network(source, config=config)
    cdss.network.set_latency_model(LatencyModel(seed=seed))
    cdss.sync(trace=True)
    return cdss


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.paths and not args.figure2:
        parser.error("nothing to trace: pass at least one spec path or --figure2")
    if len(args.paths) > 1:
        parser.error("trace one spec at a time")
    for path in args.paths:
        if not path.is_file():
            print(f"{path}: no such file", file=sys.stderr)
            return 2

    if args.figure2:
        cdss = run_figure2(args.seed)
    else:
        cdss = run_spec(args.paths[0].read_text(encoding="utf-8"), args.seed)

    tracer = cdss.obs.tracer
    payload = chrome_trace(tracer)
    problems = validate_chrome_trace(payload)
    problems += validate_metric_keys(cdss.metrics_snapshot())
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1

    if args.out is not None:
        args.out.write_text(trace_json(tracer) + "\n", encoding="utf-8")
    if args.metrics:
        print(json.dumps(cdss.metrics_snapshot(), indent=2, sort_keys=True))
    else:
        events = payload["traceEvents"]
        names = sorted({event["name"] for event in events})
        destination = args.out if args.out is not None else "(not written; pass --out)"
        print(f"{len(events)} span(s) across {len(names)} span name(s): {', '.join(names)}")
        print(f"trace: {destination}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
